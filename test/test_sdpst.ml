(* Tests for the S-DPST: construction shape, ancestor queries (paper
   Definitions 3-5 and Theorem 1), timing analysis (spans/drags), finish
   insertion, and pruning. *)

let run src = Rt.Interp.run (Mhj.Front.compile src)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let test_skeletons () =
  let skel src = Sdpst.Serial.skeleton (run src).tree in
  Alcotest.(check string)
    "straight-line is one step" "root(step)"
    (skel "def main() { print(1); print(2); }");
  Alcotest.(check string)
    "async splits steps" "root(step async(step) step)"
    (skel "def main() { print(1); async { print(2); } print(3); }");
  Alcotest.(check string)
    "finish" "root(finish(async(step)))"
    (skel "def main() { finish { async { print(1); } } }");
  Alcotest.(check string)
    "branch scope" "root(step scope(step) step)"
    (skel "def main() { if (1 < 2) { print(1); } print(2); }");
  Alcotest.(check string)
    "call scope mid-step"
    "root(step call:f(step) step)"
    (skel "def f(): int { return 3; } def main() { print(f() + 1); }");
  Alcotest.(check string)
    "loop iterations are scope instances"
    "root(step scope(step) scope(step) step)"
    (skel "def main() { print(0); for (i = 0 to 1) { print(i); } print(9); }")

let test_ids_are_preorder () =
  let res = run "def main() { async { async { print(1); } } print(2); }" in
  let ids = ref [] in
  Sdpst.Node.iter_tree (fun n -> ids := n.Sdpst.Node.id :: !ids) res.tree;
  let ids = List.rev !ids in
  Alcotest.(check (list int))
    "preorder ids" (List.init (List.length ids) Fun.id) ids

let test_count_by_kind () =
  let res =
    run "def main() { finish { async { print(1); } async { print(2); } } }"
  in
  let asyncs, finishes, scopes, steps = Sdpst.Node.count_by_kind res.tree in
  Alcotest.(check int) "asyncs" 2 asyncs;
  Alcotest.(check int) "finishes (incl. root)" 2 finishes;
  Alcotest.(check int) "scopes" 0 scopes;
  Alcotest.(check int) "steps" 2 steps

(* ------------------------------------------------------------------ *)
(* Fibonacci example: Figure 9 relations                               *)
(* ------------------------------------------------------------------ *)

let fib_res () =
  run
    {|
def fib(ret: int[], reti: int, n: int) {
  if (n < 2) { ret[reti] = n; return; }
  val x: int[] = new int[1];
  val y: int[] = new int[1];
  async fib(x, 0, n - 1);
  async fib(y, 0, n - 2);
  ret[reti] = x[0] + y[0];
}
def main() {
  val r: int[] = new int[1];
  async fib(r, 0, 3);
}
|}

let test_fib_nslca () =
  let res = fib_res () in
  let tree = res.Rt.Interp.tree in
  let asyncs = ref [] in
  Sdpst.Node.iter_tree
    (fun n -> if Sdpst.Node.is_async n then asyncs := n :: !asyncs)
    tree;
  let asyncs = List.rev !asyncs in
  (* a0 = paper's Async0 (the spawn in main); a1 = Async1 (fib(n-1)) *)
  let a0 = List.hd asyncs in
  let a1 = List.nth asyncs 1 in
  let steps = Sdpst.Tree.steps tree in
  let step_in_a1 = List.find (fun s -> Sdpst.Lca.is_ancestor a1 s) steps in
  (* the combining step "ret.v = X.v + Y.v" of the outer fib call: under
     a0, after a1, not inside any async child of a0 *)
  let sink =
    List.find
      (fun (s : Sdpst.Node.t) ->
        Sdpst.Lca.is_ancestor a0 s
        && s.Sdpst.Node.id > a1.Sdpst.Node.id
        && (not (Sdpst.Lca.is_ancestor a1 s))
        && not
             (Sdpst.Node.is_async
                (Sdpst.Lca.nonscope_child_ancestor ~anc:a0 s)))
      steps
  in
  let nslca = Sdpst.Lca.ns_lca step_in_a1 sink in
  Alcotest.(check int) "NS-LCA is the enclosing async" a0.Sdpst.Node.id
    nslca.Sdpst.Node.id;
  Alcotest.(check bool)
    "plain LCA is a scope (the call scope)" true
    (Sdpst.Node.is_scope (Sdpst.Lca.lca step_in_a1 sink));
  Alcotest.(check bool)
    "may happen in parallel (Theorem 1)" true
    (Sdpst.Lca.may_happen_in_parallel step_in_a1 sink)

let test_theorem1 () =
  let res =
    run
      "def main() { print(0); async { print(1); } print(2); finish { async \
       { print(3); } } print(4); }"
  in
  let steps = Array.of_list (Sdpst.Tree.steps res.tree) in
  let mhp a b = Sdpst.Lca.may_happen_in_parallel steps.(a) steps.(b) in
  Alcotest.(check bool) "async body || continuation" true (mhp 1 2);
  Alcotest.(check bool) "symmetric" true (mhp 2 1);
  Alcotest.(check bool) "program order before spawn" false (mhp 0 1);
  Alcotest.(check bool) "finished async not parallel with after" false
    (mhp 3 4);
  Alcotest.(check bool) "escaped async parallel with finished region" true
    (mhp 1 3);
  Alcotest.(check bool) "not parallel with itself" false (mhp 2 2)

let test_nonscope_children () =
  let res =
    run
      "def main() { print(0); if (1 < 2) { async { print(1); } print(2); } \
       print(3); }"
  in
  let kids =
    Repair.Depgraph.nonscope_children res.tree.Sdpst.Node.root
  in
  Alcotest.(check (list string))
    "kinds"
    [ "step"; "async"; "step"; "step" ]
    (List.map (fun n -> Sdpst.Node.kind_name n.Sdpst.Node.kind) kids)

(* ------------------------------------------------------------------ *)
(* Spans and drags (the paper's Figure 3/4 cost model)                 *)
(* ------------------------------------------------------------------ *)

let test_figure3_costs () =
  let place p =
    Fmt.str "def main() { %s }"
      (String.concat " "
         (List.map
            (function
              | `A w -> Fmt.str "async { work(%d); }" w
              | `Open -> "finish {"
              | `Close -> "}")
            p))
  in
  let cpl p = Sdpst.Analysis.critical_path_length (run (place p)).tree in
  (* calibrate away the constant bookkeeping overhead of main's own step:
     without any finish the CPL is 600 (the longest async) + overhead *)
  let base = cpl [ `A 500; `A 10; `A 10; `A 400; `A 600; `A 500 ] in
  let oh = base - 600 in
  (* Each async carries a few units of spawn/bookkeeping cost on top of its
     work(), so allow a small tolerance around the paper's figures; the
     exact-arithmetic version of this example lives in test_dp.ml. *)
  let check name expected placement =
    let got = cpl placement - oh in
    if abs (got - expected) > 25 then
      Alcotest.failf "%s: expected ~%d, got %d" name expected got
  in
  check "( A ) ( B ) C ( D ) E F = 1510" 1510
    [ `Open; `A 500; `Close; `Open; `A 10; `Close; `A 10; `Open; `A 400;
      `Close; `A 600; `A 500 ];
  check "( A B ) C ( D ) E F = 1500" 1500
    [ `Open; `A 500; `A 10; `Close; `A 10; `Open; `A 400; `Close; `A 600;
      `A 500 ];
  check "( A B C ) ( D ) E F = 1500" 1500
    [ `Open; `A 500; `A 10; `A 10; `Close; `Open; `A 400; `Close; `A 600;
      `A 500 ];
  check "( A ( B ) C D E ) F = 1110" 1110
    [ `Open; `A 500; `Open; `A 10; `Close; `A 10; `A 400; `A 600; `Close;
      `A 500 ]

let test_span_work_units () =
  let seq = run "def main() { work(10); work(3); }" in
  Alcotest.(check int)
    "sequential program: span = work" seq.work
    (Sdpst.Analysis.span_of seq.tree.Sdpst.Node.root);
  let par = run "def main() { work(10); async { work(5); } work(3); }" in
  let span = Sdpst.Analysis.span_of par.tree.Sdpst.Node.root in
  Alcotest.(check bool) "parallel program: span < work" true (span < par.work);
  Alcotest.(check int) "work equals step costs" par.work
    (Sdpst.Analysis.work par.tree)

(* ------------------------------------------------------------------ *)
(* Finish insertion and pruning                                        *)
(* ------------------------------------------------------------------ *)

let test_insert_finish_node () =
  let res = run "def main() { print(0); async { print(1); } print(2); }" in
  let tree = res.tree in
  let root = tree.Sdpst.Node.root in
  Alcotest.(check string)
    "before" "root(step async(step) step)"
    (Sdpst.Serial.skeleton tree);
  let cpl_before = Sdpst.Analysis.critical_path_length tree in
  let fin = Sdpst.Tree.insert_finish tree ~parent:root ~lo:1 ~hi:1 in
  Alcotest.(check string)
    "after" "root(step finish(async(step)) step)"
    (Sdpst.Serial.skeleton tree);
  Alcotest.(check int) "depth updated" 2
    (Tdrutil.Vec.get fin.Sdpst.Node.children 0).Sdpst.Node.depth;
  Alcotest.(check bool)
    "cpl did not decrease" true
    (Sdpst.Analysis.critical_path_length tree >= cpl_before)

let test_prune () =
  let res =
    run
      "def main() { async { work(100); } finish { async { work(50); } } \
       work(7); }"
  in
  let tree = res.tree in
  let cpl = Sdpst.Analysis.critical_path_length tree in
  let n_before = tree.Sdpst.Node.n_nodes in
  let removed = Sdpst.Analysis.prune tree ~keep:(fun _ -> false) in
  Alcotest.(check bool) "removed some nodes" true (removed > 0);
  Alcotest.(check int) "node count updated" (n_before - removed)
    tree.Sdpst.Node.n_nodes;
  Alcotest.(check int)
    "span preserved" cpl
    (Sdpst.Analysis.critical_path_length tree)

let test_prune_keeps_marked () =
  let res = run "def main() { async { work(9); } async { work(4); } }" in
  let tree = res.tree in
  ignore (Sdpst.Analysis.prune tree ~keep:(fun n -> n.Sdpst.Node.cost >= 9));
  let kept_intact = ref false in
  Sdpst.Node.iter_tree
    (fun n -> if Sdpst.Node.is_step n && n.cost >= 9 then kept_intact := true)
    tree;
  Alcotest.(check bool) "kept subtree intact" true !kept_intact

(* ------------------------------------------------------------------ *)
(* Tree serialization                                                  *)
(* ------------------------------------------------------------------ *)

let tree_roundtrip_equal (a : Sdpst.Node.tree) (b : Sdpst.Node.tree) =
  a.Sdpst.Node.n_nodes = b.Sdpst.Node.n_nodes
  && Sdpst.Serial.skeleton a = Sdpst.Serial.skeleton b
  && Sdpst.Serial.to_string a = Sdpst.Serial.to_string b
  && Sdpst.Analysis.critical_path_length a
     = Sdpst.Analysis.critical_path_length b

let test_tree_serialization_roundtrip () =
  List.iter
    (fun src ->
      let res = run src in
      let text = Sdpst.Serial.tree_to_string res.tree in
      let back = Sdpst.Serial.tree_of_string text in
      if not (tree_roundtrip_equal res.tree back) then
        Alcotest.failf "round-trip mismatch for %s" src)
    [
      "def main() { print(1); }";
      "def main() { async { work(5); } finish { async { work(2); } } }";
      "def f(n: int) { if (n > 0) { async { f(n - 1); } } }\n\
       def main() { f(4); work(3); }";
    ]

let serialization_roundtrip_prop =
  QCheck.Test.make ~name:"tree serialization round-trips" ~count:30
    QCheck.(int_range 0 100000)
    (fun seed ->
      let src = Benchsuite.Progen.generate ~seed () in
      let res = run src in
      let back =
        Sdpst.Serial.tree_of_string (Sdpst.Serial.tree_to_string res.tree)
      in
      tree_roundtrip_equal res.tree back)

let test_tree_serialization_pruned () =
  let res = run "def main() { async { work(50); } async { work(9); } }" in
  ignore
    (Sdpst.Analysis.prune res.tree ~keep:(fun n -> n.Sdpst.Node.cost > 20));
  let back =
    Sdpst.Serial.tree_of_string (Sdpst.Serial.tree_to_string res.tree)
  in
  Alcotest.(check bool) "pruned round-trip" true
    (tree_roundtrip_equal res.tree back)

let test_tree_serialization_errors () =
  let bad s =
    match Sdpst.Serial.tree_of_string s with
    | exception Sdpst.Serial.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "bad magic" true (bad "nope\n");
  Alcotest.(check bool) "garbage line" true
    (bad "tdrace-sdpst-v1\nwat\n");
  Alcotest.(check bool) "orphan node" true
    (bad "tdrace-sdpst-v1\n0 -1 R -1 -1 -1 7 0 -1\n5 99 S -1 0 0 -1 3 0\n")

let test_offline_trace_resolution () =
  (* The full offline hand-off: serialize tree + trace, reload both
     without re-executing, and resolve the races. *)
  let src =
    "var x: int = 0;\ndef main() { async { x = 1; } print(x); }"
  in
  let prog = Mhj.Front.compile src in
  let det, res = Espbags.Detector.detect Espbags.Detector.Mrw prog in
  let tree_text = Sdpst.Serial.tree_to_string res.tree in
  let trace_text =
    Espbags.Trace.to_string ~mode:Espbags.Detector.Mrw
      (Espbags.Detector.races det)
  in
  let tree = Sdpst.Serial.tree_of_string tree_text in
  let _mode, races = Espbags.Trace.of_string tree trace_text in
  Alcotest.(check int) "races resolved offline" 1 (List.length races);
  let r = List.hd races in
  Alcotest.(check bool) "endpoints are steps" true
    (Sdpst.Node.is_step r.src && Sdpst.Node.is_step r.sink);
  Alcotest.(check bool) "MHP holds on the reloaded tree" true
    (Sdpst.Lca.may_happen_in_parallel r.src r.sink)

let () =
  Alcotest.run "sdpst"
    [
      ( "construction",
        [
          Alcotest.test_case "skeletons" `Quick test_skeletons;
          Alcotest.test_case "preorder ids" `Quick test_ids_are_preorder;
          Alcotest.test_case "count by kind" `Quick test_count_by_kind;
        ] );
      ( "ancestry",
        [
          Alcotest.test_case "fib NS-LCA (Fig. 9)" `Quick test_fib_nslca;
          Alcotest.test_case "Theorem 1 MHP" `Quick test_theorem1;
          Alcotest.test_case "non-scope children" `Quick
            test_nonscope_children;
        ] );
      ( "timing",
        [
          Alcotest.test_case "Figure 3/4 CPLs" `Quick test_figure3_costs;
          Alcotest.test_case "span/work units" `Quick test_span_work_units;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "insert finish" `Quick test_insert_finish_node;
          Alcotest.test_case "prune" `Quick test_prune;
          Alcotest.test_case "prune keeps marked" `Quick
            test_prune_keeps_marked;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "round-trip" `Quick
            test_tree_serialization_roundtrip;
          QCheck_alcotest.to_alcotest serialization_roundtrip_prop;
          Alcotest.test_case "pruned round-trip" `Quick
            test_tree_serialization_pruned;
          Alcotest.test_case "parse errors" `Quick
            test_tree_serialization_errors;
          Alcotest.test_case "offline trace resolution" `Quick
            test_offline_trace_resolution;
        ] );
    ]
