(* Whole-pipeline property tests over randomly generated async-finish
   programs (Benchsuite.Progen), checking the paper's Problem 1 contract:

   1. the repaired program has no data races for the input;
   2. inserted finishes respect lexical scope (the repaired program
      pretty-prints to something that still compiles);
   3. semantics equal the serial elision;
   4. statement order/count is preserved (only finish wrappers added). *)

let compile = Mhj.Front.compile

let generate seed = Benchsuite.Progen.generate ~seed ()

let repaired_is_race_free =
  QCheck.Test.make ~name:"repair converges to race-freedom" ~count:60
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let prog = compile (generate seed) in
      let report = Repair.Driver.repair prog in
      report.converged
      && Espbags.Detector.race_count
           (fst (Espbags.Detector.detect Espbags.Detector.Mrw report.program))
         = 0)

let repaired_matches_elision =
  QCheck.Test.make ~name:"repaired semantics = serial elision" ~count:60
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let prog = compile (generate seed) in
      let report = Repair.Driver.repair prog in
      let ser = Rt.Interp.run_elision prog in
      let rep = Rt.Interp.run report.program in
      ser.output = rep.output)

let repaired_recompiles =
  QCheck.Test.make ~name:"repaired program re-compiles from source" ~count:40
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let prog = compile (generate seed) in
      let report = Repair.Driver.repair prog in
      match compile (Mhj.Pretty.program_to_string report.program) with
      | exception _ -> false
      | reparsed ->
          (Rt.Interp.run reparsed).output = (Rt.Interp.run report.program).output)

(* Only finish statements are added: async count identical, and the
   sequence of non-finish statement kinds in a preorder walk is identical. *)
let kind_fingerprint prog =
  let buf = Buffer.create 256 in
  Mhj.Ast.iter_stmts
    (fun st ->
      match st.Mhj.Ast.s with
      | Mhj.Ast.Finish _ -> ()
      | Mhj.Ast.Isolated _ -> Buffer.add_string buf "X;"
      | Mhj.Ast.Block _ -> ()
      | Mhj.Ast.Async _ -> Buffer.add_string buf "A;"
      | Mhj.Ast.Decl (_, x, _, _) -> Buffer.add_string buf ("D" ^ x ^ ";")
      | Mhj.Ast.Assign (x, _, _) -> Buffer.add_string buf ("=" ^ x ^ ";")
      | Mhj.Ast.If _ -> Buffer.add_string buf "I;"
      | Mhj.Ast.While _ -> Buffer.add_string buf "W;"
      | Mhj.Ast.For _ -> Buffer.add_string buf "F;"
      | Mhj.Ast.Return _ -> Buffer.add_string buf "R;"
      | Mhj.Ast.Expr _ -> Buffer.add_string buf "E;")
    prog;
  Buffer.contents buf

let statements_preserved =
  QCheck.Test.make ~name:"repair only adds finish wrappers" ~count:60
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let prog = compile (generate seed) in
      let report = Repair.Driver.repair prog in
      kind_fingerprint prog = kind_fingerprint report.program
      && Mhj.Ast.count_asyncs prog = Mhj.Ast.count_asyncs report.program
      && Mhj.Ast.count_finishes report.program
         >= Mhj.Ast.count_finishes prog)

(* Pruning race-free subtrees (the paper's §9 memory mitigation) must not
   change the repair at all.  This used to hold only up to a 15%
   critical-path tolerance (loosened from 5% after progen seed 451531
   drifted 409 vs 449): collapsing a race-free scope that spawns asyncs
   hid finish-boundary positions inside its expansion, so the DP
   deterministically picked a different, longer placement.  [prune] now
   collapses a scope only when its subtree spawns no task (async/finish
   subtrees still collapse — they are single depgraph vertices with
   exact summaries), which restores placement identity: same merged
   finish set, same critical path, byte for byte.  Verified over 5000
   progen seeds including 451531 before tightening this back. *)
let prune_preserves_placement_quality =
  QCheck.Test.make ~name:"S-DPST pruning preserves the placement exactly"
    ~count:40
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let prog = compile (generate seed) in
      let det, res = Espbags.Detector.detect Espbags.Detector.Mrw prog in
      let races = Espbags.Detector.races det in
      if races = [] then true
      else begin
        let _, merged1 = Repair.Driver.place_for_tree ~program:prog races in
        let endpoints = Hashtbl.create 64 in
        List.iter
          (fun (r : Espbags.Race.t) ->
            Hashtbl.replace endpoints r.src.Sdpst.Node.id ();
            Hashtbl.replace endpoints r.sink.Sdpst.Node.id ())
          races;
        let removed =
          Sdpst.Analysis.prune res.tree ~keep:(fun n ->
              Hashtbl.mem endpoints n.Sdpst.Node.id)
        in
        let _, merged2 = Repair.Driver.place_for_tree ~program:prog races in
        if
          merged1.Repair.Static_place.placements
          <> merged2.Repair.Static_place.placements
        then
          QCheck.Test.fail_reportf
            "seed %d: pruning changed the merged placement@.unpruned: %a@.\
             pruned: %a"
            seed
            Fmt.(list ~sep:comma Mhj.Transform.pp_placement)
            merged1.Repair.Static_place.placements
            Fmt.(list ~sep:comma Mhj.Transform.pp_placement)
            merged2.Repair.Static_place.placements;
        let repaired m = Repair.Static_place.apply prog m in
        let cpl p =
          Sdpst.Analysis.critical_path_length (Rt.Interp.run p).tree
        in
        removed >= 0
        && cpl (repaired merged1) = cpl (repaired merged2)
      end)

(* Repair is idempotent: repairing a repaired program changes nothing. *)
let repair_idempotent =
  QCheck.Test.make ~name:"repair is idempotent" ~count:40
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let prog = compile (generate seed) in
      let once = (Repair.Driver.repair prog).program in
      let report2 = Repair.Driver.repair once in
      List.length report2.iterations = 0)

(* Pruning race-free subtrees must not change the placement demanded. *)
let coverage_sane =
  QCheck.Test.make ~name:"coverage ratios are within [0,1]" ~count:40
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let prog = compile (generate seed) in
      let res = Rt.Interp.run prog in
      let c = Repair.Coverage.of_runs prog [ res.tree ] in
      let ok r = r >= 0.0 && r <= 1.0 in
      ok (Repair.Coverage.stmt_coverage c)
      && ok (Repair.Coverage.async_coverage c)
      && c.covered_stmts <= c.total_stmts
      && c.covered_asyncs <= c.total_asyncs)

(* Tournament contract: every candidate claiming race-freedom re-detects
   clean under BOTH detection backends, and the selected winner's CPL is
   never worse than pure finish insertion's (the tie-break favours
   finish, so the winner is finish unless strictly better). *)
let tournament_sound =
  QCheck.Test.make ~name:"tournament verifies under both backends, never \
                          worse than finish" ~count:25
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let prog = compile (generate seed) in
      match Repair.Strategy.run `Tournament prog with
      | exception Repair.Driver.Unrepairable m ->
          QCheck.Test.fail_reportf
            "tournament unrepairable on a progen program: %s" m
      | outcome ->
          let open Repair.Strategy in
          List.iter
            (fun (c : candidate) ->
              if c.verified then begin
                let p = Option.get c.program in
                if not (race_free ~backend:`Espbags p) then
                  QCheck.Test.fail_reportf
                    "%s candidate races under espbags" (kind_name c.kind);
                if not (race_free ~backend:`Vclock p) then
                  QCheck.Test.fail_reportf
                    "%s candidate races under vclock" (kind_name c.kind)
              end)
            outcome.candidates;
          let fin =
            List.find (fun (c : candidate) -> c.kind = Finish)
              outcome.candidates
          in
          (match (outcome.winner.score, fin.score) with
          | Some w, Some f when fin.verified ->
              if w.Compgraph.Score.cpl > f.Compgraph.Score.cpl then
                QCheck.Test.fail_reportf
                  "winner cpl %d worse than finish cpl %d"
                  w.Compgraph.Score.cpl f.Compgraph.Score.cpl
          | _ -> ());
          true)

(* SRW repair agrees with MRW repair on the final race count (both zero),
   even if it takes more iterations. *)
let srw_also_converges =
  QCheck.Test.make ~name:"SRW-driven repair also converges" ~count:25
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let prog = compile (generate seed) in
      let report = Repair.Driver.repair ~mode:Espbags.Detector.Srw prog in
      report.converged)

let () =
  Alcotest.run "properties"
    [
      ( "pipeline",
        List.map QCheck_alcotest.to_alcotest
          [
            repaired_is_race_free;
            repaired_matches_elision;
            repaired_recompiles;
            statements_preserved;
            repair_idempotent;
            prune_preserves_placement_quality;
            coverage_sane;
            tournament_sound;
            srw_also_converges;
          ] );
    ]
