(* Focused tests for the pretty-printer: precedence-faithful expression
   rendering and statement layout, beyond the round-trip tests in
   test_mhj.ml. *)

open Mhj

let expr src =
  let p =
    Front.compile ~require_main:false
      (Fmt.str "def f(b1: bool, b2: bool, x: int, g: float): int { return %s; }"
         src)
  in
  match (List.hd p.Ast.funcs).body.stmts with
  | [ { s = Ast.Return (Some e); _ } ] -> Pretty.expr_to_string e
  | _ -> Alcotest.fail "unexpected structure"

let bool_expr src =
  let p =
    Front.compile ~require_main:false
      (Fmt.str
         "def f(b1: bool, b2: bool, x: int, g: float): bool { return %s; }"
         src)
  in
  match (List.hd p.Ast.funcs).body.stmts with
  | [ { s = Ast.Return (Some e); _ } ] -> Pretty.expr_to_string e
  | _ -> Alcotest.fail "unexpected structure"

let test_precedence_matrix () =
  let cases =
    [
      (* input, canonical output *)
      ("1 + 2 + 3", "1 + 2 + 3");
      ("(1 + 2) + 3", "1 + 2 + 3");
      ("1 + (2 + 3)", "1 + (2 + 3)");
      ("1 * 2 + 3 * 4", "1 * 2 + 3 * 4");
      ("(1 + 2) * (3 + 4)", "(1 + 2) * (3 + 4)");
      ("1 - (2 - 3)", "1 - (2 - 3)");
      ("100 / 10 / 2", "100 / 10 / 2");
      ("100 / (10 / 2)", "100 / (10 / 2)");
      ("x % 7 * 2", "x % 7 * 2");
      ("-x + 1", "-x + 1");
      ("-(x + 1)", "-(x + 1)");
    ]
  in
  List.iter
    (fun (input, expected) ->
      Alcotest.(check string) input expected (expr input))
    cases

let test_bool_precedence () =
  let cases =
    [
      ("b1 && b2 || b1", "b1 && b2 || b1");
      ("b1 && (b2 || b1)", "b1 && (b2 || b1)");
      ("!(b1 && b2)", "!(b1 && b2)");
      ("!b1 && b2", "!b1 && b2");
      ("x + 1 < x * 2", "x + 1 < x * 2");
      ("(x < 2) == b1", "(x < 2) == b1");
    ]
  in
  List.iter
    (fun (input, expected) ->
      Alcotest.(check string) input expected (bool_expr input))
    cases

let test_float_literals_reparse () =
  List.iter
    (fun f ->
      let src = Fmt.str "def main() { print(%.17g); }" f in
      let src = if String.contains src '.' then src else
          Fmt.str "def main() { print(%.17g.0); }" f in
      let p = Front.compile src in
      let printed = Pretty.program_to_string p in
      match Front.compile printed with
      | exception e ->
          Alcotest.failf "float %.17g does not re-parse: %s (%s)" f
            (Printexc.to_string e) printed
      | p2 ->
          let out1 = (Rt.Interp.run p).output in
          let out2 = (Rt.Interp.run p2).output in
          Alcotest.(check string) "same printed value" out1 out2)
    [ 0.0; 1.0; 0.5; 3.14159265358979; 1e10; 1.5e-8; 123456.789 ]

let test_statement_layout () =
  let p =
    Front.compile
      {|
def main() {
  val a: int[] = new int[4];
  for (i = 0 to 3 by 2) {
    a[i] = i;
  }
  if (a[0] == 0) {
    print(a[0]);
  }
  else {
    print(a[2]);
  }
}
|}
  in
  let printed = Pretty.program_to_string p in
  List.iter
    (fun needle ->
      if
        not
          (let n = String.length needle and m = String.length printed in
           let rec go i =
             i + n <= m && (String.sub printed i n = needle || go (i + 1))
           in
           go 0)
      then Alcotest.failf "missing %S in:\n%s" needle printed)
    [
      "for (i = 0 to 3 by 2)";
      "if (a[0] == 0)";
      "else";
      "val a: int[] = new int[4];";
      "a[i] = i;";
    ]

let test_multidim_printing () =
  let p =
    Front.compile
      "def main() { val g: float[][] = new float[2][3]; g[1][2] = 1.5; \
       print(g[1][2]); }"
  in
  let printed = Pretty.program_to_string p in
  let contains needle =
    let n = String.length needle and m = String.length printed in
    let rec go i = i + n <= m && (String.sub printed i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "new float[2][3]" true (contains "new float[2][3]");
  Alcotest.(check bool) "g[1][2] = 1.5;" true (contains "g[1][2] = 1.5;");
  Alcotest.(check bool) "type float[][]" true (contains "float[][]")

let () =
  Alcotest.run "pretty"
    [
      ( "expressions",
        [
          Alcotest.test_case "precedence matrix" `Quick test_precedence_matrix;
          Alcotest.test_case "boolean precedence" `Quick test_bool_precedence;
          Alcotest.test_case "float literals" `Quick test_float_literals_reparse;
        ] );
      ( "statements",
        [
          Alcotest.test_case "layout" `Quick test_statement_layout;
          Alcotest.test_case "multi-dimensional" `Quick test_multidim_printing;
        ] );
    ]
