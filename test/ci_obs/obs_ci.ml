(* @ci check for the observability files: run `tdrepair repair -q
   --trace --metrics` on two samples and validate the emitted JSON —
   parseable by Obs.Json, sorted keys, monotone timestamps, one span per
   pipeline stage, and the full metrics key schema.  Exits non-zero on
   the first violation.

   This duplicates the schema assertions of test_cli's
   "repair --trace/--metrics" case on purpose: the alcotest run covers
   one sample under `dune runtest`, while this orchestrator sweeps the
   multi-iteration sample too and keeps the check in the @ci alias even
   if the CLI suite is filtered. *)

let here = Filename.dirname Sys.executable_name

let binary = Filename.concat here "../../bin/tdrepair.exe"

let sample name = Filename.concat here ("../../samples/" ^ name)

let fail fmt = Fmt.kstr (fun s -> prerr_endline ("obs-ci: " ^ s); exit 1) fmt

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec keys_sorted = function
  | Obs.Json.Obj kvs ->
      let ks = List.map fst kvs in
      ks = List.sort compare ks && List.for_all keys_sorted (List.map snd kvs)
  | Obs.Json.List js -> List.for_all keys_sorted js
  | _ -> true

let stages =
  [
    "parse"; "typecheck"; "normalize"; "iteration"; "detect"; "sdpst-build";
    "scopecheck"; "nslca-group"; "depgraph"; "dp-place"; "rewrite";
  ]

(* Every metrics dump must carry the full declared schema, including the
   keys of subsystems that did not run. *)
let schema_keys =
  [
    "detector.accesses"; "detector.locations"; "detector.races";
    "detector.scan_entries"; "detector.skipped"; "detector.uf_finds";
    "detector.uf_unions"; "driver.degradations"; "driver.finishes_inserted";
    "driver.groups"; "driver.iterations"; "driver.race_pairs";
    "driver.races"; "engine.deque_grows"; "engine.fuel_batches";
    "engine.inlined"; "engine.pooled"; "engine.runs"; "engine.steals";
    "engine.tasks"; "engine.yields"; "prune.conflicts"; "prune.discharged";
    "prune.kept"; "prune.stmts";
  ]

let check_trace name path =
  let j =
    try Obs.Json.of_string (read_file path)
    with Obs.Json.Parse_error e -> fail "%s: trace unparseable: %s" name e
  in
  if not (keys_sorted j) then fail "%s: trace keys not sorted" name;
  (match Obs.Json.member "displayTimeUnit" j with
  | Some (Obs.Json.Str "ms") -> ()
  | _ -> fail "%s: displayTimeUnit missing" name);
  let events =
    match Obs.Json.member "traceEvents" j with
    | Some (Obs.Json.List evs) -> evs
    | _ -> fail "%s: traceEvents missing" name
  in
  let ts ev =
    match Obs.Json.member "ts" ev with
    | Some (Obs.Json.Float f) -> f
    | Some (Obs.Json.Int i) -> float_of_int i
    | _ -> fail "%s: event missing ts" name
  in
  let rec monotone = function
    | a :: b :: tl ->
        if ts a > ts b then fail "%s: timestamps not monotone" name;
        monotone (b :: tl)
    | _ -> ()
  in
  monotone events;
  let names =
    List.map
      (fun ev ->
        match Obs.Json.member "name" ev with
        | Some (Obs.Json.Str s) -> s
        | _ -> fail "%s: event missing name" name)
      events
  in
  List.iter
    (fun st ->
      if not (List.mem st names) then
        fail "%s: missing pipeline stage span %S" name st)
    stages;
  List.length events

let check_metrics name path =
  let j =
    try Obs.Json.of_string (read_file path)
    with Obs.Json.Parse_error e -> fail "%s: metrics unparseable: %s" name e
  in
  if not (keys_sorted j) then fail "%s: metrics keys not sorted" name;
  (match j with
  | Obs.Json.Obj kvs ->
      List.iter
        (function
          | _, Obs.Json.Int _ -> ()
          | k, _ -> fail "%s: metrics value %s is not an int" name k)
        kvs
  | _ -> fail "%s: metrics file is not an object" name);
  let get k =
    match Obs.Json.member k j with
    | Some (Obs.Json.Int i) -> i
    | _ -> fail "%s: metrics missing schema key %s" name k
  in
  List.iter (fun k -> ignore (get k)) schema_keys;
  if get "detector.accesses" <= 0 then
    fail "%s: detector.accesses not populated" name;
  if get "driver.iterations" <= 0 then
    fail "%s: driver.iterations not populated" name

let check_sample ?(extra_args = []) name =
  let trace = Filename.temp_file "obs_ci" ".trace.json" in
  let metrics = Filename.temp_file "obs_ci" ".metrics.json" in
  let cmd =
    Fmt.str "%s repair %s -q --trace %s --metrics %s %s"
      (Filename.quote binary)
      (Filename.quote (sample name))
      (Filename.quote trace) (Filename.quote metrics)
      (String.concat " " (List.map Filename.quote extra_args))
  in
  let code = Sys.command cmd in
  if code <> 0 then fail "%s: repair exited %d" name code;
  let n = check_trace name trace in
  check_metrics name metrics;
  Sys.remove trace;
  Sys.remove metrics;
  Fmt.pr "obs-ci: %-16s OK (%d spans, %d schema keys)@." name n
    (List.length schema_keys)

let () =
  check_sample "figure5.mhj";
  (* --static-prune so the prune.* gauges are exercised too *)
  check_sample "fib_buggy.mhj" ~extra_args:[ "--static-prune" ];
  Fmt.pr "obs-ci: all observability checks passed@."
