(* End-to-end tests of the repair driver on the paper's examples
   (Figures 1/2/8/15) and on targeted synchronization patterns. *)

let repair ?mode src = Repair.Driver.repair ?mode (Mhj.Front.compile src)

let race_free prog =
  Espbags.Detector.race_count
    (fst (Espbags.Detector.detect Espbags.Detector.Mrw prog))
  = 0

let cpl prog =
  Sdpst.Analysis.critical_path_length (Rt.Interp.run prog).tree

let out prog = (Rt.Interp.run prog).output

(* ------------------------------------------------------------------ *)
(* Fibonacci (Figures 8/15)                                            *)
(* ------------------------------------------------------------------ *)

let fib_buggy =
  {|
def fib(ret: int[], reti: int, n: int) {
  if (n < 2) { ret[reti] = n; return; }
  val x: int[] = new int[1];
  val y: int[] = new int[1];
  async fib(x, 0, n - 1);
  async fib(y, 0, n - 2);
  ret[reti] = x[0] + y[0];
}
def main() {
  val r: int[] = new int[1];
  async fib(r, 0, 8);
  print(r[0]);
}
|}

let test_fib_repair () =
  let report = repair fib_buggy in
  Alcotest.(check bool) "converged" true report.converged;
  Alcotest.(check int) "single iteration" 1 (List.length report.iterations);
  Alcotest.(check bool) "race-free" true (race_free report.program);
  Alcotest.(check string) "computes fib(8)" "21" (String.trim (out report.program));
  (* Figure 15: one finish around the two recursive asyncs (inside fib),
     plus one around the async in main *)
  Alcotest.(check int) "two static finishes" 2
    (Mhj.Ast.count_finishes report.program);
  (* the fib-internal finish wraps exactly the two asyncs *)
  let fib_fn = Option.get (Mhj.Ast.find_func report.program "fib") in
  let found = ref false in
  Mhj.Ast.iter_stmts
    (fun st ->
      match st.Mhj.Ast.s with
      | Mhj.Ast.Finish { s = Mhj.Ast.Block b; _ } ->
          let kinds =
            List.map
              (fun (s : Mhj.Ast.stmt) ->
                match s.s with Mhj.Ast.Async _ -> "async" | _ -> "other")
              b.stmts
          in
          if kinds = [ "async"; "async" ] then found := true
      | _ -> ())
    { report.program with funcs = [ fib_fn ] };
  Alcotest.(check bool) "finish wraps the two asyncs (Fig. 15)" true !found

let test_fib_parallelism_restored () =
  (* The repaired fib must have the same CPL as the expert version. *)
  let report = repair fib_buggy in
  let expert =
    Mhj.Front.compile
      {|
def fib(ret: int[], reti: int, n: int) {
  if (n < 2) { ret[reti] = n; return; }
  val x: int[] = new int[1];
  val y: int[] = new int[1];
  finish {
    async fib(x, 0, n - 1);
    async fib(y, 0, n - 2);
  }
  ret[reti] = x[0] + y[0];
}
def main() {
  val r: int[] = new int[1];
  finish { async fib(r, 0, 8); }
  print(r[0]);
}
|}
  in
  Alcotest.(check int) "CPL equals expert placement" (cpl expert)
    (cpl report.program)

(* ------------------------------------------------------------------ *)
(* Quicksort and mergesort motivation examples (Figures 1/2)           *)
(* ------------------------------------------------------------------ *)

let test_quicksort_keeps_recursion_async () =
  let b = Benchsuite.Quicksort.source ~n:100 ~seed:5 in
  let stripped = Mhj.Transform.strip_finishes (Mhj.Front.compile b) in
  let report = Repair.Driver.repair stripped in
  Alcotest.(check bool) "converged" true report.converged;
  Alcotest.(check bool) "race-free" true (race_free report.program);
  (* same parallelism as the expert version (finish at the root call) *)
  let expert = Mhj.Front.compile b in
  Alcotest.(check int) "CPL equals expert" (cpl expert) (cpl report.program);
  Alcotest.(check string) "sorted output" (out expert) (out report.program)

let test_mergesort_needs_inner_finish () =
  let b = Benchsuite.Mergesort.source ~n:64 ~seed:3 in
  let stripped = Mhj.Transform.strip_finishes (Mhj.Front.compile b) in
  let report = Repair.Driver.repair stripped in
  Alcotest.(check bool) "converged" true report.converged;
  Alcotest.(check bool) "race-free" true (race_free report.program);
  let expert = Mhj.Front.compile b in
  Alcotest.(check int) "CPL equals expert" (cpl expert) (cpl report.program);
  Alcotest.(check string) "same output" (out expert) (out report.program)

(* ------------------------------------------------------------------ *)
(* Synchronization patterns                                            *)
(* ------------------------------------------------------------------ *)

let patterns =
  [
    ( "independent asyncs stay unsynchronized",
      "var x: int = 0;\n\
       def main() { async { work(50); } async { work(60); } x = 1; }",
      0 (* no races, no finishes *) );
    ( "phased pipeline",
      {|
var a: int[] = new int[4];
var b: int[] = new int[4];
def main() {
  for (i = 0 to 3) { async { a[i] = i * 2; } }
  for (i = 0 to 3) { async { b[i] = a[i] + 1; } }
  print(b[3]);
}
|},
      2 (* a finish per phase *) );
    ( "producer before consumer",
      "var x: int = 0;\n\
       def main() { async { x = 1; } async { print(x); } }",
      1 );
  ]

let test_patterns () =
  List.iter
    (fun (name, src, expected_finishes) ->
      let report = repair src in
      if not report.converged then Alcotest.failf "%s: did not converge" name;
      if not (race_free report.program) then
        Alcotest.failf "%s: races remain" name;
      let got = Mhj.Ast.count_finishes report.program in
      if got <> expected_finishes then
        Alcotest.failf "%s: expected %d finishes, got %d" name
          expected_finishes got;
      (* semantics preserved *)
      let ser = Rt.Interp.run_elision (Mhj.Front.compile src) in
      if ser.output <> out report.program then
        Alcotest.failf "%s: output changed" name)
    patterns

let test_already_synchronized_untouched () =
  let src =
    "var x: int = 0;\ndef main() { finish { async { x = 1; } } print(x); }"
  in
  let report = repair src in
  Alcotest.(check int) "no iterations needed" 0
    (List.length report.iterations);
  Alcotest.(check int) "program unchanged" 1
    (Mhj.Ast.count_finishes report.program)

(* Paper §4.1 / Figure 7: with two parallel readers and one writer, SRW
   tracks a single reader, so SRW-driven repair needs a second iteration
   to fix the race its first run could not see; MRW fixes both at once. *)
let test_srw_needs_more_iterations () =
  (* durations chosen so the DP's optimum wraps only the reader it can
     see: the first reader is cheap and the writer is expensive, so
     serializing just the first reader beats also waiting for the long
     second reader before the writer may start *)
  let src =
    {|
var x: int = 0;
def main() {
  async { print(x); }
  async { work(500); print(x); }
  async { x = 1; work(100); }
}
|}
  in
  let mrw = repair ~mode:Espbags.Detector.Mrw src in
  let srw = repair ~mode:Espbags.Detector.Srw src in
  Alcotest.(check bool) "both converge" true (mrw.converged && srw.converged);
  Alcotest.(check int) "MRW repairs in one iteration" 1
    (List.length mrw.iterations);
  Alcotest.(check bool) "SRW needs more iterations" true
    (List.length srw.iterations > 1);
  Alcotest.(check bool) "both end race-free" true
    (race_free mrw.program && race_free srw.program)

let test_srw_mode () =
  (* SRW may need several repair iterations but must converge too. *)
  let report = repair ~mode:Espbags.Detector.Srw fib_buggy in
  Alcotest.(check bool) "converged" true report.converged;
  Alcotest.(check bool) "race-free" true (race_free report.program);
  Alcotest.(check string) "correct" "21" (String.trim (out report.program))

let test_statement_order_preserved () =
  (* Problem 1 condition 5: repair only wraps, never reorders. *)
  let src =
    "var x: int = 0;\n\
     def main() { print(1); async { x = 2; } print(x); print(3); }"
  in
  let report = repair src in
  let ser = Rt.Interp.run_elision (Mhj.Front.compile src) in
  Alcotest.(check string) "order (and values) preserved" ser.output
    (out report.program)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

(* The paper's §6.1 incremental strategy (live S-DPST updates) must agree
   with the batch strategy on convergence, race freedom and parallelism. *)
let test_incremental_strategy () =
  List.iter
    (fun src ->
      let prog = Mhj.Front.compile src in
      let batch = Repair.Driver.repair ~strategy:`Batch prog in
      let incr = Repair.Driver.repair ~strategy:`Incremental prog in
      Alcotest.(check bool) "both converge" true
        (batch.converged && incr.converged);
      Alcotest.(check bool) "both race-free" true
        (race_free batch.program && race_free incr.program);
      Alcotest.(check string) "same output" (out batch.program)
        (out incr.program);
      Alcotest.(check int) "same critical path" (cpl batch.program)
        (cpl incr.program))
    [
      fib_buggy;
      "var x: int = 0;\ndef main() { async { x = 1; } print(x); }";
      {|
var a: int[] = new int[4];
var b: int[] = new int[4];
def main() {
  for (i = 0 to 3) { async { a[i] = i * 2; } }
  for (i = 0 to 3) { async { b[i] = a[i] + 1; } }
  print(b[3]);
}
|};
    ]

let incremental_matches_batch =
  QCheck.Test.make ~name:"incremental strategy matches batch on random programs"
    ~count:25
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let src = Benchsuite.Progen.generate ~seed () in
      let prog = Mhj.Front.compile src in
      let batch = Repair.Driver.repair ~strategy:`Batch prog in
      let incr = Repair.Driver.repair ~strategy:`Incremental prog in
      batch.converged && incr.converged
      && race_free batch.program
      && race_free incr.program
      && out batch.program = out incr.program)

let test_report_rendering () =
  let report = repair fib_buggy in
  let text =
    Repair.Report.to_string (Mhj.Front.compile fib_buggy) report
  in
  Alcotest.(check bool) "mentions race-free" true
    (contains ~affix:"race-free" text);
  Alcotest.(check bool) "mentions insert finish" true
    (contains ~affix:"insert finish" text)

let () =
  Alcotest.run "driver"
    [
      ( "fib",
        [
          Alcotest.test_case "repair (Fig. 15)" `Quick test_fib_repair;
          Alcotest.test_case "parallelism restored" `Quick
            test_fib_parallelism_restored;
        ] );
      ( "sorts",
        [
          Alcotest.test_case "quicksort (Fig. 2)" `Quick
            test_quicksort_keeps_recursion_async;
          Alcotest.test_case "mergesort (Fig. 1)" `Quick
            test_mergesort_needs_inner_finish;
        ] );
      ( "patterns",
        [
          Alcotest.test_case "pattern suite" `Quick test_patterns;
          Alcotest.test_case "already synchronized" `Quick
            test_already_synchronized_untouched;
          Alcotest.test_case "SRW mode" `Quick test_srw_mode;
          Alcotest.test_case "SRW iteration count (Fig. 7)" `Quick
            test_srw_needs_more_iterations;
          Alcotest.test_case "statement order" `Quick
            test_statement_order_preserved;
          Alcotest.test_case "report rendering" `Quick test_report_rendering;
        ] );
      ( "strategies",
        [
          Alcotest.test_case "incremental = batch (paper examples)" `Quick
            test_incremental_strategy;
          QCheck_alcotest.to_alcotest incremental_matches_batch;
        ] );
    ]
