(* Differential suite for the dense-shadow detector rewrite.

   Espbags.Reference is the seed implementation, kept verbatim as the
   golden oracle; Espbags.Detector is the optimized hot path (interned
   addresses, flat shadow tables, array union-find, epoch-deduped MRW,
   packed race records).  The rewrite claims representation changes only
   — so on every generated program the two must report the {e same race
   records}, and because the interpreter is deterministic the comparison
   can be exact and ordered, not just a multiset check.

   Four properties per generated program:
   - SRW: new vs seed, ordered record identity;
   - MRW: new vs seed, ordered record identity;
   - MRW under --static-prune (Static.Prune.keep_fn) vs unpruned MRW:
     same multiset (pruning may only skip statements proven race-free,
     never change what is reported);
   - counters: both sides agree on [n_accesses] (minus skips) and race
     counts are consistent with [clean].

   `dune runtest` uses a bounded number of programs; the @ci alias runs
   the deep pass (TDR_QCHECK_COUNT=300).  Seeds are the qcheck input, so
   failures replay exactly. *)

let compile = Mhj.Front.compile

let qcheck_count =
  match
    Option.bind (Sys.getenv_opt "TDR_QCHECK_COUNT") int_of_string_opt
  with
  | Some n when n > 0 -> n
  | _ -> 60

(* Node ids are deterministic, so two runs report the same races in the
   same order iff these signature lists are equal. *)
let exact_sigs races =
  List.map
    (fun (r : Espbags.Race.t) ->
      ( r.src.Sdpst.Node.id,
        r.sink.Sdpst.Node.id,
        Fmt.str "%a" Rt.Addr.pp r.addr,
        Fmt.str "%a" Espbags.Race.pp_kind r.kind ))
    races

let pp_sig ppf (src, sink, addr, kind) =
  Fmt.pf ppf "(%d -> %d) %s %s" src sink addr kind

let check_identical ~seed ~what a b =
  if a <> b then
    QCheck.Test.fail_reportf
      "seed %d: %s differ@.new  (%d): @[%a@]@.seed (%d): @[%a@]" seed what
      (List.length a)
      Fmt.(list ~sep:comma pp_sig)
      a (List.length b)
      Fmt.(list ~sep:comma pp_sig)
      b

let diff_one mode seed =
  let prog = compile (Benchsuite.Progen.generate ~seed ()) in
  let det, _ = Espbags.Detector.detect mode prog in
  let ref_det, _ = Espbags.Reference.detect mode prog in
  check_identical ~seed
    ~what:(Fmt.str "%a race records" Espbags.Detector.pp_mode mode)
    (exact_sigs (Espbags.Detector.races det))
    (exact_sigs (Espbags.Reference.races ref_det));
  if det.Espbags.Detector.n_accesses <> ref_det.Espbags.Reference.n_accesses
  then
    QCheck.Test.fail_reportf "seed %d: access counters differ (%d vs %d)" seed
      det.Espbags.Detector.n_accesses ref_det.Espbags.Reference.n_accesses;
  if Espbags.Detector.clean det <> (Espbags.Detector.race_count det = 0) then
    QCheck.Test.fail_reportf "seed %d: clean/race_count inconsistent" seed;
  true

let srw_matches_seed =
  QCheck.Test.make ~count:qcheck_count
    ~name:"SRW: dense detector == seed (ordered records)"
    QCheck.(int_range 0 1_000_000)
    (diff_one Espbags.Detector.Srw)

let mrw_matches_seed =
  QCheck.Test.make ~count:qcheck_count
    ~name:"MRW: dense detector == seed (ordered records)"
    QCheck.(int_range 0 1_000_000)
    (diff_one Espbags.Detector.Mrw)

(* Static pruning drops monitoring for statements the MHP pre-pass proves
   race-free; with MRW that must leave the reported multiset unchanged
   (order may differ: skipped accesses no longer interleave reports). *)
let mrw_prune_matches_seed =
  QCheck.Test.make ~count:qcheck_count
    ~name:"MRW + static prune: same multiset as seed unpruned"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let prog = compile (Benchsuite.Progen.generate ~seed ()) in
      let pr = Static.Prune.make prog in
      let pruned, _ =
        Espbags.Detector.detect
          ~keep:(Static.Prune.keep_fn pr)
          Espbags.Detector.Mrw prog
      in
      let ref_det, _ = Espbags.Reference.detect Espbags.Detector.Mrw prog in
      check_identical ~seed ~what:"pruned-MRW vs seed race multisets"
        (List.sort compare (exact_sigs (Espbags.Detector.races pruned)))
        (List.sort compare (exact_sigs (Espbags.Reference.races ref_det)));
      if pruned.Espbags.Detector.n_skipped > ref_det.Espbags.Reference.n_accesses
      then
        QCheck.Test.fail_reportf "seed %d: skipped more accesses than exist"
          seed;
      true)

let () =
  Alcotest.run "detector-diff"
    [
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [ srw_matches_seed; mrw_matches_seed; mrw_prune_matches_seed ] );
    ]
