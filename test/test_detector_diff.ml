(* Differential suite for the dense-shadow detector rewrite.

   Espbags.Reference is the seed implementation, kept verbatim as the
   golden oracle; Espbags.Detector is the optimized hot path (interned
   addresses, flat shadow tables, array union-find, epoch-deduped MRW,
   packed race records).  The rewrite claims representation changes only
   — so on every generated program the two must report the {e same race
   records}, and because the interpreter is deterministic the comparison
   can be exact and ordered, not just a multiset check.

   The grid (now built on Diff_harness, shared with the vector-clock
   suite in test_vclock.ml):
   - SRW and MRW: new vs seed, ordered record identity plus access
     counters;
   - MRW under --static-prune (Static.Prune.keep_fn) vs unpruned seed:
     same multiset (pruning may only skip statements proven race-free,
     never change what is reported).

   `dune runtest` uses a bounded number of programs; the @ci alias runs
   the deep pass (TDR_QCHECK_COUNT=300).  Seeds are the qcheck input, so
   failures replay exactly. *)

let tests =
  Diff_harness.diff_tests
    ~backends:[ Diff_harness.espbags ]
    ~modes:[ Espbags.Detector.Srw; Espbags.Detector.Mrw ]
    ~prunes:[ false ] ()
  @ Diff_harness.diff_tests
      ~backends:[ Diff_harness.espbags ]
      ~modes:[ Espbags.Detector.Mrw ]
      ~prunes:[ true ] ()
  (* Memory-bounded paths (DESIGN.md §15): tiny chunks force the
     multi-chunk shadow slab, a 2-record spill cap forces the on-disk
     race round-trip.  Reports must stay byte-identical. *)
  @ Diff_harness.diff_tests
      ~backends:[ Diff_harness.espbags_chunked; Diff_harness.espbags_spilled ]
      ~modes:[ Espbags.Detector.Srw; Espbags.Detector.Mrw ]
      ~prunes:[ false ] ()
  @ Diff_harness.diff_tests
      ~backends:[ Diff_harness.espbags_spilled ]
      ~modes:[ Espbags.Detector.Mrw ]
      ~prunes:[ true ] ()

let () =
  Alcotest.run "detector-diff"
    [ ("differential", List.map QCheck_alcotest.to_alcotest tests) ]
