(* Unit tests for the lib/serve daemon internals: the bounded job
   queue, the result cache, the wire protocol, the per-job worker
   (watchdog, retries, caching) and the supervisor (crash detection,
   respawn, hard watchdog).  The daemon's socket loop is exercised
   end-to-end against the real binary in test/servecli. *)

module J = Obs.Json
module P = Serve.Protocol
module FI = Repair.Faultinject

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let racy_src =
  {|
def main() {
  val a: int[] = new int[4];
  async { a[0] = 1; }
  a[0] = 2;
  print(a[0]);
}
|}

let spec ?(id = "t") ?(op = P.Repair) ?(flags = P.default_flags) src =
  { P.id; op; src; flags }

(* ------------------------------------------------------------------ *)
(* Jobq                                                                *)
(* ------------------------------------------------------------------ *)

let test_jobq_shed () =
  let q = Serve.Jobq.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Serve.Jobq.try_push q 1);
  Alcotest.(check bool) "push 2" true (Serve.Jobq.try_push q 2);
  Alcotest.(check bool) "push 3 shed" false (Serve.Jobq.try_push q 3);
  Alcotest.(check int) "len" 2 (Serve.Jobq.length q);
  Alcotest.(check (option int)) "pop fifo" (Some 1) (Serve.Jobq.pop q);
  Alcotest.(check bool) "push after pop" true (Serve.Jobq.try_push q 4)

let test_jobq_force_front () =
  let q = Serve.Jobq.create ~capacity:1 in
  Alcotest.(check bool) "push" true (Serve.Jobq.try_push q 1);
  (* crash re-enqueue: bypasses capacity AND goes to the front *)
  Serve.Jobq.force_push q 0;
  Alcotest.(check int) "over capacity" 2 (Serve.Jobq.length q);
  Alcotest.(check (option int)) "front first" (Some 0) (Serve.Jobq.pop q);
  Alcotest.(check (option int)) "then fifo" (Some 1) (Serve.Jobq.pop q)

let test_jobq_close_drains () =
  let q = Serve.Jobq.create ~capacity:4 in
  ignore (Serve.Jobq.try_push q 1);
  ignore (Serve.Jobq.try_push q 2);
  Serve.Jobq.close q;
  Alcotest.(check bool) "push after close refused" false (Serve.Jobq.try_push q 3);
  Alcotest.(check (option int)) "drain 1" (Some 1) (Serve.Jobq.pop q);
  Alcotest.(check (option int)) "drain 2" (Some 2) (Serve.Jobq.pop q);
  Alcotest.(check (option int)) "then None" None (Serve.Jobq.pop q)

let test_jobq_pop_blocks_until_push () =
  let q = Serve.Jobq.create ~capacity:4 in
  let d = Domain.spawn (fun () -> Serve.Jobq.pop q) in
  Unix.sleepf 0.02;
  ignore (Serve.Jobq.try_push q 42);
  Alcotest.(check (option int)) "blocked pop woken" (Some 42) (Domain.join d)

let test_jobq_remove () =
  let q = Serve.Jobq.create ~capacity:4 in
  List.iter (fun x -> ignore (Serve.Jobq.try_push q x)) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "remove mid" (Some 2)
    (Serve.Jobq.remove q (fun x -> x = 2));
  Alcotest.(check (option int)) "remove missing" None
    (Serve.Jobq.remove q (fun x -> x = 9));
  Alcotest.(check (option int)) "order kept 1" (Some 1) (Serve.Jobq.pop q);
  Alcotest.(check (option int)) "order kept 3" (Some 3) (Serve.Jobq.pop q)

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let test_cache_roundtrip () =
  let c = Serve.Cache.create ~capacity:2 in
  Alcotest.(check (option string)) "miss" None (Serve.Cache.find c "k1");
  Serve.Cache.store c "k1" "v1";
  Alcotest.(check (option string)) "hit" (Some "v1") (Serve.Cache.find c "k1");
  Alcotest.(check (pair int int)) "stats" (1, 1) (Serve.Cache.stats c)

let test_cache_fifo_eviction () =
  let c = Serve.Cache.create ~capacity:2 in
  Serve.Cache.store c "k1" "v1";
  Serve.Cache.store c "k2" "v2";
  Serve.Cache.store c "k3" "v3";
  Alcotest.(check int) "bounded" 2 (Serve.Cache.length c);
  Alcotest.(check (option string)) "oldest evicted" None (Serve.Cache.find c "k1");
  Alcotest.(check (option string)) "newest kept" (Some "v3")
    (Serve.Cache.find c "k3")

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let parse_ok line =
  match P.parse line with
  | Ok r -> r
  | Error _ -> Alcotest.failf "unexpected parse error on %S" line

let test_protocol_parse_job () =
  match
    parse_ok
      {|{"op":"repair","id":"j1","src":"def main() {}","flags":{"mode":"srw","backend":"vclock","strategy":"tournament","shadow_chunk":512,"spill":"/tmp/sp","timeout_ms":50,"retries":1,"trace":true,"set":{"n":3},"faults":["detector_abort","interp_trap:99","slow_stage:20"]}}|}
  with
  | P.Job s ->
      Alcotest.(check string) "id" "j1" s.P.id;
      Alcotest.(check bool) "op" true (s.P.op = P.Repair);
      Alcotest.(check bool) "mode" true
        (s.P.flags.P.mode = Espbags.Detector.Srw);
      Alcotest.(check bool) "backend" true (s.P.flags.P.backend = `Vclock);
      Alcotest.(check bool) "strategy" true
        (s.P.flags.P.strategy = `Tournament);
      Alcotest.(check (option int)) "shadow_chunk" (Some 512)
        s.P.flags.P.shadow_chunk;
      Alcotest.(check (option string)) "spill" (Some "/tmp/sp")
        s.P.flags.P.spill;
      Alcotest.(check (option int)) "timeout" (Some 50)
        s.P.flags.P.timeout_ms;
      Alcotest.(check (option int)) "retries" (Some 1) s.P.flags.P.retries;
      Alcotest.(check bool) "trace" true s.P.flags.P.trace;
      Alcotest.(check (list (pair string int))) "sets" [ ("n", 3) ]
        s.P.flags.P.sets;
      Alcotest.(check (list string)) "faults"
        [ "detector_abort"; "interp_trap:99"; "slow_stage:20" ]
        (List.map P.fault_to_string s.P.flags.P.faults)
  | _ -> Alcotest.fail "expected a job"

let test_protocol_parse_control () =
  (match parse_ok {|{"op":"health"}|} with
  | P.Health -> ()
  | _ -> Alcotest.fail "expected health");
  (match parse_ok {|{"op":"shutdown"}|} with
  | P.Shutdown -> ()
  | _ -> Alcotest.fail "expected shutdown");
  match parse_ok {|{"op":"cancel","id":7}|} with
  | P.Cancel id -> Alcotest.(check string) "int id coerced" "7" id
  | _ -> Alcotest.fail "expected cancel"

let test_protocol_errors_typed () =
  let err line =
    match P.parse line with
    | Error e -> P.frame (P.error_reply e)
    | Ok _ -> Alcotest.failf "expected error for %S" line
  in
  (* golden error frames: canonical sorted-key emission *)
  Alcotest.(check bool) "malformed tagged" true
    (contains ~affix:{|"error": "malformed-frame"|}
       (err "{not json"));
  Alcotest.(check bool) "non-object tagged" true
    (contains ~affix:{|"error": "malformed-frame"|}
       (err "[1,2]"));
  Alcotest.(check bool) "bad op tagged" true
    (contains ~affix:{|"error": "bad-request"|}
       (err {|{"op":"frobnicate"}|}));
  Alcotest.(check bool) "missing src tagged" true
    (contains ~affix:{|"error": "bad-request"|}
       (err {|{"op":"repair","id":"x"}|}));
  Alcotest.(check bool) "bad fault tagged" true
    (contains ~affix:{|"error": "bad-request"|}
       (err {|{"op":"repair","id":"x","src":"","flags":{"faults":["nope"]}}|}))

let test_protocol_reply_golden () =
  Alcotest.(check string) "terminal reply frame"
    "{\"attempts\": 1, \"id\": \"j1\", \"status\": \"ok\"}\n"
    (P.frame (P.job_reply ~id:"j1" ~status:P.Sok ~attempts:1 ()));
  Alcotest.(check string) "overloaded reply frame"
    "{\"id\": \"j2\", \"status\": \"overloaded\"}\n"
    (P.frame (P.job_reply ~id:"j2" ~status:P.Soverloaded ()))

let test_cache_key_sensitivity () =
  let base = spec racy_src in
  let key = P.cache_key base in
  Alcotest.(check string) "deterministic" key (P.cache_key base);
  let ne label other =
    Alcotest.(check bool) label false (String.equal key (P.cache_key other))
  in
  ne "op matters" { base with P.op = P.Lint };
  ne "src matters" (spec (racy_src ^ " "));
  ne "mode matters"
    {
      base with
      P.flags = { base.P.flags with P.mode = Espbags.Detector.Srw };
    };
  ne "budgets matter"
    {
      base with
      P.flags =
        {
          base.P.flags with
          P.budgets = { Repair.Guard.unlimited with fuel = Some 5 };
        };
    };
  ne "sets matter"
    { base with P.flags = { base.P.flags with P.sets = [ ("n", 1) ] } };
  (* every detector-affecting flag added since the daemon landed must
     key the cache too: serving an espbags reply to a vclock request (or
     a finish repair to a tournament request) is a stale-result bug *)
  ne "backend matters"
    { base with P.flags = { base.P.flags with P.backend = `Vclock } };
  ne "auto backend distinct from explicit"
    { base with P.flags = { base.P.flags with P.backend = `Auto } };
  ne "shadow_chunk matters"
    { base with P.flags = { base.P.flags with P.shadow_chunk = Some 256 } };
  ne "spill matters"
    { base with P.flags = { base.P.flags with P.spill = Some "/tmp/sp" } };
  ne "strategy matters"
    { base with P.flags = { base.P.flags with P.strategy = `Tournament } };
  Alcotest.(check bool) "isolated and elide keys differ" false
    (String.equal
       (P.cache_key
          { base with P.flags = { base.P.flags with P.strategy = `Isolated } })
       (P.cache_key
          { base with P.flags = { base.P.flags with P.strategy = `Elide } }));
  (* result-neutral flags must NOT change the key *)
  Alcotest.(check string) "trace ignored" key
    (P.cache_key
       { base with P.flags = { base.P.flags with P.trace = true } });
  Alcotest.(check string) "timeout ignored" key
    (P.cache_key
       { base with P.flags = { base.P.flags with P.timeout_ms = Some 9 } })

(* ------------------------------------------------------------------ *)
(* Worker                                                              *)
(* ------------------------------------------------------------------ *)

let test_worker_repair_ok () =
  let o = Serve.Worker.execute (spec racy_src) in
  Alcotest.(check bool) "ok" true (o.Serve.Worker.status = P.Sok);
  Alcotest.(check int) "one attempt" 1 o.Serve.Worker.attempts;
  Alcotest.(check bool) "not cached" false o.Serve.Worker.cached;
  match o.Serve.Worker.report with
  | Some r ->
      Alcotest.(check (option bool)) "converged" (Some true)
        (Option.map (function J.Bool b -> b | _ -> false)
           (J.member "converged" r))
  | None -> Alcotest.fail "expected a report"

let test_worker_repair_strategy () =
  (* tournament repairs route through the strategy layer and report the
     winner plus every candidate's outcome *)
  let flags = { P.default_flags with P.strategy = `Tournament } in
  let o = Serve.Worker.execute (spec ~flags racy_src) in
  Alcotest.(check bool) "ok" true (o.Serve.Worker.status = P.Sok);
  match o.Serve.Worker.report with
  | Some r ->
      (match J.member "winner" r with
      | Some (J.Str w) ->
          Alcotest.(check bool) "winner is a known strategy" true
            (List.mem w [ "finish"; "isolated"; "elide"; "chunk" ])
      | _ -> Alcotest.fail "expected a winner field");
      (match J.member "candidates" r with
      | Some (J.List cs) ->
          Alcotest.(check int) "four candidates" 4 (List.length cs)
      | _ -> Alcotest.fail "expected candidates");
      (match J.member "metrics" r with
      | Some (J.Obj kvs) ->
          Alcotest.(check bool) "strategy.winner metric present" true
            (List.mem_assoc "strategy.winner" kvs)
      | _ -> Alcotest.fail "expected metrics")
  | None -> Alcotest.fail "expected a report"

let test_worker_detect_vclock_backend () =
  (* the backend flag must reach the worker's detect path *)
  let flags = { P.default_flags with P.backend = `Vclock } in
  let o = Serve.Worker.execute (spec ~op:P.Detect ~flags racy_src) in
  Alcotest.(check bool) "ok" true (o.Serve.Worker.status = P.Sok);
  match o.Serve.Worker.report with
  | Some r ->
      Alcotest.(check (option string)) "vclock backend ran" (Some "vclock")
        (Option.map
           (function J.Str s -> s | _ -> "?")
           (J.member "backend" r))
  | None -> Alcotest.fail "expected a report"

let isolated_src =
  {|
def main() {
  val sum: int[] = new int[1];
  finish {
    for (i = 0 to 3) {
      async { isolated { sum[0] = sum[0] + i; } }
    }
  }
  print(sum[0]);
}
|}

let test_worker_detect_discharges_isolated () =
  (* detect must mirror Driver.detect: races whose endpoints both sit in
     isolated sections are discharged, not reported. *)
  let o = Serve.Worker.execute (spec ~op:P.Detect isolated_src) in
  Alcotest.(check bool) "ok" true (o.Serve.Worker.status = P.Sok);
  match o.Serve.Worker.report with
  | Some r ->
      Alcotest.(check (option int)) "no surviving races" (Some 0)
        (Option.map
           (function J.Int n -> n | _ -> -1)
           (J.member "races" r))
  | None -> Alcotest.fail "expected a report"

let test_worker_parse_error_fatal () =
  let o = Serve.Worker.execute (spec "def main( {") in
  Alcotest.(check bool) "failed" true (o.Serve.Worker.status = P.Sfailed);
  Alcotest.(check int) "no retry on input error" 1 o.Serve.Worker.attempts

let test_worker_transient_retry () =
  let flags = { P.default_flags with P.faults = [ FI.Detector_abort ] } in
  let o = Serve.Worker.execute ~backoff_ms:1 (spec ~flags racy_src) in
  (* the fault fires on attempt 1 only; attempt 2 runs clean *)
  Alcotest.(check bool) "recovered" true (o.Serve.Worker.status = P.Sok);
  Alcotest.(check int) "retried once" 2 o.Serve.Worker.attempts

let test_worker_retries_exhausted () =
  let flags = { P.default_flags with P.retries = Some 0;
                faults = [ FI.Detector_abort ] } in
  let o = Serve.Worker.execute ~backoff_ms:1 (spec ~flags racy_src) in
  Alcotest.(check bool) "terminal failure" true
    (o.Serve.Worker.status = P.Sfailed);
  Alcotest.(check int) "single attempt" 1 o.Serve.Worker.attempts

let test_worker_timeout_degraded () =
  let flags =
    { P.default_flags with P.timeout_ms = Some 40;
      faults = [ FI.Slow_stage 400 ] }
  in
  let t0 = Obs.Clock.now_ns () in
  let o = Serve.Worker.execute (spec ~flags racy_src) in
  let elapsed_ms =
    Int64.to_int (Int64.div (Int64.sub (Obs.Clock.now_ns ()) t0) 1_000_000L)
  in
  Alcotest.(check bool) "degraded" true (o.Serve.Worker.status = P.Sdegraded);
  Alcotest.(check bool) "watchdog named" true
    (match o.Serve.Worker.error with
    | Some e -> contains ~affix:"watchdog" e
    | None -> false);
  (* the watchdog fired mid-stall, well before the 400ms fault ended *)
  Alcotest.(check bool)
    (Fmt.str "timed out promptly (%d ms)" elapsed_ms)
    true (elapsed_ms < 300)

let test_worker_cache_hit_skips_pipeline () =
  let cache = Serve.Cache.create ~capacity:8 in
  let flags = { P.default_flags with P.trace = true } in
  let s = spec ~flags racy_src in
  let first = Serve.Worker.execute ~cache s in
  Alcotest.(check bool) "first not cached" false first.Serve.Worker.cached;
  let spans1 =
    match first.Serve.Worker.spans with
    | Some ss -> ss
    | None -> Alcotest.fail "expected spans on traced run"
  in
  Alcotest.(check bool) "pipeline stages ran" true
    (List.mem "compile" spans1 && List.mem "iteration" spans1);
  let second = Serve.Worker.execute ~cache s in
  Alcotest.(check bool) "cache hit" true second.Serve.Worker.cached;
  Alcotest.(check int) "no attempt" 0 second.Serve.Worker.attempts;
  (* span ABSENCE is the proof no pipeline stage re-ran *)
  Alcotest.(check (option (list string))) "no spans on hit" (Some [])
    second.Serve.Worker.spans;
  (* and the report is byte-identical *)
  let bytes o =
    match o.Serve.Worker.report with
    | Some r -> J.to_string r
    | None -> Alcotest.fail "expected report"
  in
  Alcotest.(check string) "byte-identical report" (bytes first) (bytes second)

let test_worker_faulty_jobs_not_cached () =
  let cache = Serve.Cache.create ~capacity:8 in
  let flags = { P.default_flags with P.faults = [ FI.Detector_abort ] } in
  let o1 = Serve.Worker.execute ~cache ~backoff_ms:1 (spec ~flags racy_src) in
  Alcotest.(check bool) "recovered ok" true (o1.Serve.Worker.status = P.Sok);
  Alcotest.(check int) "nothing stored" 0 (Serve.Cache.length cache)

(* ------------------------------------------------------------------ *)
(* Supervisor                                                          *)
(* ------------------------------------------------------------------ *)

(* Poll the supervisor until [n] completions arrive, reaping dead
   workers along the way (the daemon's event loop does the same). *)
let await_completions sup n =
  let deadline = Int64.add (Obs.Clock.now_ns ()) 20_000_000_000L in
  let rec go acc =
    if List.length acc >= n then List.rev acc
    else if Int64.compare (Obs.Clock.now_ns ()) deadline > 0 then
      Alcotest.failf "timed out with %d of %d completion(s)"
        (List.length acc) n
    else begin
      Serve.Supervisor.reap sup;
      let cs = Serve.Supervisor.completions sup in
      if cs = [] then Unix.sleepf 0.01;
      go (List.rev_append cs acc)
    end
  in
  go []

let test_supervisor_runs_jobs () =
  let sup =
    Serve.Supervisor.create ~workers:2 ~queue_capacity:8 ~cache_capacity:0
      ~backoff_ms:1 ~notify:(fun () -> ()) ()
  in
  Fun.protect ~finally:(fun () -> Serve.Supervisor.shutdown sup) @@ fun () ->
  let seqs =
    List.filter_map
      (fun i ->
        match Serve.Supervisor.submit sup (spec ~id:(string_of_int i) racy_src)
        with
        | `Accepted seq -> Some seq
        | `Overloaded -> None)
      [ 1; 2; 3; 4 ]
  in
  Alcotest.(check int) "all admitted" 4 (List.length seqs);
  let cs = await_completions sup 4 in
  Alcotest.(check (list int)) "every job exactly once" (List.sort compare seqs)
    (List.sort compare
       (List.map (fun (c : Serve.Supervisor.completion) -> c.seq) cs));
  List.iter
    (fun (c : Serve.Supervisor.completion) ->
      Alcotest.(check bool) "ok" true
        (c.outcome.Serve.Worker.status = P.Sok))
    cs

let test_supervisor_crash_respawn () =
  let sup =
    Serve.Supervisor.create ~workers:1 ~queue_capacity:8 ~cache_capacity:0
      ~backoff_ms:1 ~notify:(fun () -> ()) ()
  in
  Fun.protect ~finally:(fun () -> Serve.Supervisor.shutdown sup) @@ fun () ->
  (* job 1 kills its worker; job 2 is queued behind it.  The supervisor
     must respawn the worker, re-enqueue job 1 at the front, and both
     jobs must still reach exactly one terminal completion. *)
  let flags = { P.default_flags with P.faults = [ FI.Worker_crash ] } in
  let s1 =
    match Serve.Supervisor.submit sup (spec ~id:"crashy" ~flags racy_src) with
    | `Accepted seq -> seq
    | `Overloaded -> Alcotest.fail "admission refused"
  in
  let s2 =
    match Serve.Supervisor.submit sup (spec ~id:"normal" racy_src) with
    | `Accepted seq -> seq
    | `Overloaded -> Alcotest.fail "admission refused"
  in
  let cs = await_completions sup 2 in
  Alcotest.(check (list int)) "both terminal exactly once"
    (List.sort compare [ s1; s2 ])
    (List.sort compare
       (List.map (fun (c : Serve.Supervisor.completion) -> c.seq) cs));
  List.iter
    (fun (c : Serve.Supervisor.completion) ->
      Alcotest.(check bool)
        (Fmt.str "seq %d ok after respawn" c.Serve.Supervisor.seq)
        true
        (c.outcome.Serve.Worker.status = P.Sok))
    cs;
  Alcotest.(check bool) "crash counted" true
    (Serve.Supervisor.crashes sup >= 1);
  Alcotest.(check bool) "worker respawned" true
    (Serve.Supervisor.respawns sup >= 1)

let test_supervisor_hard_watchdog () =
  let sup =
    Serve.Supervisor.create ~workers:1 ~queue_capacity:8 ~cache_capacity:0
      ~backoff_ms:1 ~notify:(fun () -> ()) ()
  in
  Fun.protect ~finally:(fun () -> Serve.Supervisor.shutdown sup) @@ fun () ->
  (* no timeout_ms: the cooperative watchdog is disarmed, so the 800ms
     stall wedges the worker; only the hard watchdog can save us *)
  let flags = { P.default_flags with P.faults = [ FI.Slow_stage 800 ] } in
  let seq =
    match Serve.Supervisor.submit sup (spec ~id:"wedge" ~flags racy_src) with
    | `Accepted seq -> seq
    | `Overloaded -> Alcotest.fail "admission refused"
  in
  Unix.sleepf 0.15;
  Serve.Supervisor.check_wedged sup ~limit_ms:50;
  let cs = await_completions sup 1 in
  let c = List.hd cs in
  Alcotest.(check int) "wedged job answered" seq c.Serve.Supervisor.seq;
  Alcotest.(check bool) "degraded" true
    (c.outcome.Serve.Worker.status = P.Sdegraded);
  Alcotest.(check bool) "respawned" true (Serve.Supervisor.respawns sup >= 1);
  (* the replacement worker serves new jobs while the abandoned one is
     still sleeping *)
  (match Serve.Supervisor.submit sup (spec ~id:"after" racy_src) with
  | `Accepted _ -> ()
  | `Overloaded -> Alcotest.fail "admission refused");
  let cs = await_completions sup 1 in
  Alcotest.(check bool) "pool alive after abandonment" true
    ((List.hd cs).outcome.Serve.Worker.status = P.Sok)

let test_supervisor_overload_shed () =
  (* a stalled single worker + tiny queue: pushes beyond capacity must
     shed, and every admitted job still terminates exactly once *)
  let sup =
    Serve.Supervisor.create ~workers:1 ~queue_capacity:2 ~cache_capacity:0
      ~backoff_ms:1 ~notify:(fun () -> ()) ()
  in
  Fun.protect ~finally:(fun () -> Serve.Supervisor.shutdown sup) @@ fun () ->
  let slow =
    { P.default_flags with P.faults = [ FI.Slow_stage 150 ];
      timeout_ms = Some 10_000 }
  in
  let results =
    List.map
      (fun i ->
        Serve.Supervisor.submit sup
          (spec ~id:(string_of_int i) ~flags:slow racy_src))
      [ 1; 2; 3; 4; 5; 6 ]
  in
  let admitted =
    List.filter_map
      (function `Accepted s -> Some s | `Overloaded -> None)
      results
  in
  Alcotest.(check bool) "some admitted" true (List.length admitted >= 1);
  Alcotest.(check bool) "some shed" true
    (List.length admitted < List.length results);
  let cs = await_completions sup (List.length admitted) in
  Alcotest.(check (list int)) "admitted jobs all terminal"
    (List.sort compare admitted)
    (List.sort compare
       (List.map (fun (c : Serve.Supervisor.completion) -> c.seq) cs))

let test_supervisor_cancel () =
  let sup =
    Serve.Supervisor.create ~workers:1 ~queue_capacity:8 ~cache_capacity:0
      ~backoff_ms:1 ~notify:(fun () -> ()) ()
  in
  Fun.protect ~finally:(fun () -> Serve.Supervisor.shutdown sup) @@ fun () ->
  let slow =
    { P.default_flags with P.faults = [ FI.Slow_stage 150 ];
      timeout_ms = Some 10_000 }
  in
  (* the first job occupies the worker; the second is still queued and
     can be cancelled *)
  ignore (Serve.Supervisor.submit sup (spec ~id:"busy" ~flags:slow racy_src));
  Unix.sleepf 0.03;
  (match Serve.Supervisor.submit sup (spec ~id:"victim" racy_src) with
  | `Accepted _ -> ()
  | `Overloaded -> Alcotest.fail "admission refused");
  Alcotest.(check bool) "queued job cancelled" true
    (Serve.Supervisor.cancel sup "victim" <> None);
  Alcotest.(check (option int)) "cancel is gone" None
    (Serve.Supervisor.cancel sup "victim");
  let cs = await_completions sup 1 in
  Alcotest.(check string) "only the busy job completes" "busy"
    (List.hd cs).Serve.Supervisor.spec.P.id

(* A detect reply listing every race can run to tens of MB.  Line
   extraction on both ends must scan each incoming chunk once — the
   old code rescanned the whole buffer per 4 KB read, turning a 32 MB
   frame into minutes of memory traffic.  32 MB must round-trip in
   seconds. *)
let test_client_large_frame () =
  let rd, wr = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  let payload = String.make (32 * 1024 * 1024) 'x' in
  let writer =
    Domain.spawn (fun () ->
        let s = payload ^ "\nsecond\n" in
        let len = String.length s in
        let rec go off =
          if off < len then
            match Unix.write_substring wr s off (min 4096 (len - off)) with
            | n -> go (off + n)
            | exception Unix.Unix_error (EINTR, _, _) -> go off
        in
        go 0;
        Unix.close wr)
  in
  let t0 = Unix.gettimeofday () in
  let c = Serve.Client.of_fd rd in
  (match Serve.Client.recv c with
  | Some line ->
      Alcotest.(check int) "frame length" (String.length payload)
        (String.length line);
      Alcotest.(check bool) "frame content" true (line = payload)
  | None -> Alcotest.fail "no frame");
  Alcotest.(check (option string)) "next frame intact" (Some "second")
    (Serve.Client.recv c);
  Alcotest.(check (option string)) "eof" None (Serve.Client.recv c);
  Domain.join writer;
  Serve.Client.close c;
  let elapsed = Unix.gettimeofday () -. t0 in
  if elapsed > 20. then
    Alcotest.failf "32 MB frame took %.1fs — line scan is superlinear"
      elapsed

let () =
  Alcotest.run "serve"
    [
      ( "jobq",
        [
          Alcotest.test_case "bounded shed" `Quick test_jobq_shed;
          Alcotest.test_case "force push front" `Quick test_jobq_force_front;
          Alcotest.test_case "close drains" `Quick test_jobq_close_drains;
          Alcotest.test_case "pop blocks" `Quick
            test_jobq_pop_blocks_until_push;
          Alcotest.test_case "remove" `Quick test_jobq_remove;
        ] );
      ( "cache",
        [
          Alcotest.test_case "roundtrip" `Quick test_cache_roundtrip;
          Alcotest.test_case "fifo eviction" `Quick test_cache_fifo_eviction;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "parse job" `Quick test_protocol_parse_job;
          Alcotest.test_case "parse control" `Quick
            test_protocol_parse_control;
          Alcotest.test_case "typed errors" `Quick test_protocol_errors_typed;
          Alcotest.test_case "reply goldens" `Quick
            test_protocol_reply_golden;
          Alcotest.test_case "cache key sensitivity" `Quick
            test_cache_key_sensitivity;
          Alcotest.test_case "large frame linear scan" `Slow
            test_client_large_frame;
        ] );
      ( "worker",
        [
          Alcotest.test_case "repair ok" `Quick test_worker_repair_ok;
          Alcotest.test_case "repair via strategy tournament" `Quick
            test_worker_repair_strategy;
          Alcotest.test_case "detect honours vclock backend" `Quick
            test_worker_detect_vclock_backend;
          Alcotest.test_case "detect discharges isolated" `Quick
            test_worker_detect_discharges_isolated;
          Alcotest.test_case "input error fatal" `Quick
            test_worker_parse_error_fatal;
          Alcotest.test_case "transient retry" `Quick
            test_worker_transient_retry;
          Alcotest.test_case "retries exhausted" `Quick
            test_worker_retries_exhausted;
          Alcotest.test_case "timeout degraded" `Quick
            test_worker_timeout_degraded;
          Alcotest.test_case "cache hit skips pipeline" `Quick
            test_worker_cache_hit_skips_pipeline;
          Alcotest.test_case "faulty jobs not cached" `Quick
            test_worker_faulty_jobs_not_cached;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "runs jobs" `Quick test_supervisor_runs_jobs;
          Alcotest.test_case "crash respawn" `Quick
            test_supervisor_crash_respawn;
          Alcotest.test_case "hard watchdog" `Slow
            test_supervisor_hard_watchdog;
          Alcotest.test_case "overload shed" `Quick
            test_supervisor_overload_shed;
          Alcotest.test_case "cancel" `Quick test_supervisor_cancel;
        ] );
    ]
