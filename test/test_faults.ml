(* Robustness tests: fault injection, resource budgets and graceful
   degradation.

   The headline property: whatever faults fire and however tight the
   budgets, [Repair.Driver.repair_checked] always terminates with either a
   converged repair or a structured diagnostic — never an uncaught
   exception — and any repair it claims converged is verified race-free,
   degraded or not.

   Iteration count for the qcheck property is bounded for `dune runtest`;
   the @ci alias (TDR_QCHECK_COUNT) runs a deeper pass. *)

module D = Repair.Driver
module Diag = Repair.Diag
module Guard = Repair.Guard
module FI = Repair.Faultinject

let compile = Mhj.Front.compile

(* Two independent races at the same NS-LCA: enough structure that the DP
   has real work and the per-edge fallback must cover two edges. *)
let racy_src =
  {|
def main() {
  val a: int[] = new int[4];
  async { a[0] = 1; }
  a[0] = 2;
  async { a[1] = 3; }
  a[1] = 4;
  print(a[0] + a[1]);
}
|}

let race_count prog =
  Espbags.Detector.race_count
    (fst (Espbags.Detector.detect Espbags.Detector.Mrw prog))

let check_race_free label prog =
  Alcotest.(check int) (label ^ ": race-free") 0 (race_count prog)

let check_semantics label original repaired =
  let ser = Rt.Interp.run_elision original in
  let rep = Rt.Interp.run repaired in
  Alcotest.(check string) (label ^ ": elision semantics kept") ser.output
    rep.output

(* ------------------------------------------------------------------ *)
(* Degradation paths                                                   *)
(* ------------------------------------------------------------------ *)

(* Satellite: a zero DP budget forces the interval-cover fallback on every
   group; the result must still be race-free and must say it degraded. *)
let test_interval_cover_fallback () =
  let prog = compile racy_src in
  let budgets = { Guard.unlimited with Guard.dp_work = Some 0 } in
  let r = D.repair ~budgets prog in
  Alcotest.(check bool) "converged" true r.converged;
  Alcotest.(check bool) "reported degraded" true
    (List.exists
       (function Guard.Dp_interval_cover _ -> true | _ -> false)
       r.degradations);
  check_race_free "interval cover" r.program;
  check_semantics "interval cover" prog r.program

let test_dp_budget_affordable_not_degraded () =
  (* a generous budget must not degrade anything *)
  let prog = compile racy_src in
  let budgets = { Guard.unlimited with Guard.dp_work = Some 1_000_000 } in
  let r = D.repair ~budgets prog in
  Alcotest.(check bool) "converged" true r.converged;
  Alcotest.(check (list string)) "no degradations" []
    (List.map (Fmt.str "%a" Guard.pp_degradation) r.degradations);
  check_race_free "affordable dp" r.program

(* Acceptance: S-DPST node-budget exhaustion on the mergesort benchmark
   degrades via prune, still converges race-free, and the degradation is
   recorded. *)
let test_sdpst_budget_mergesort () =
  let bench =
    match Benchsuite.Suite.find "mergesort" with
    | Some b -> b
    | None -> Alcotest.fail "mergesort benchmark missing"
  in
  let prog = Benchsuite.Bench.stripped_program bench in
  let budgets = { Guard.unlimited with Guard.sdpst_nodes = Some 200 } in
  let r = D.repair ~budgets prog in
  Alcotest.(check bool) "converged" true r.converged;
  Alcotest.(check bool) "pruned" true
    (List.exists
       (function
         | Guard.Sdpst_pruned { nodes_removed; _ } -> nodes_removed > 0
         | _ -> false)
       r.degradations);
  check_race_free "mergesort pruned" r.program

let test_fuel_budget () =
  let prog = compile racy_src in
  let budgets = { Guard.unlimited with Guard.fuel = Some 3 } in
  match D.repair_checked ~budgets prog with
  | Error d -> Alcotest.(check bool) "budget stage" true (d.Diag.stage = Diag.Budget)
  | Ok _ -> Alcotest.fail "a 3-unit fuel budget cannot complete a run"

(* ------------------------------------------------------------------ *)
(* Injected faults: each maps to a typed diagnostic at its stage        *)
(* ------------------------------------------------------------------ *)

let checked_under faults prog =
  FI.with_faults faults (fun () -> D.repair_checked prog)

let expect_stage name fault stage =
  let prog = compile racy_src in
  match checked_under [ fault ] prog with
  | Error d ->
      Alcotest.(check bool)
        (name ^ ": diagnostic at owning stage")
        true (d.Diag.stage = stage)
  | Ok _ -> Alcotest.failf "%s: fault did not surface" name

let test_interp_trap () = expect_stage "interp trap" (FI.Interp_trap 5) Diag.Budget

let test_detector_abort () =
  expect_stage "detector abort" FI.Detector_abort Diag.Detect

let test_place_unsat () = expect_stage "place unsat" FI.Place_unsat Diag.Place

let test_insert_fail () = expect_stage "insert fail" FI.Insert_fail Diag.Insert

let test_dp_timeout_degrades () =
  (* Dp_timeout is not fatal: it forces the degradation chain. *)
  let prog = compile racy_src in
  match checked_under [ FI.Dp_timeout ] prog with
  | Error d -> Alcotest.failf "dp timeout became fatal: %a" Diag.pp d
  | Ok r ->
      Alcotest.(check bool) "converged" true r.converged;
      Alcotest.(check bool) "degraded" true (r.degradations <> []);
      check_race_free "dp timeout" r.program

let test_plan_restored () =
  (try
     FI.with_faults [ FI.Detector_abort ] (fun () ->
         ignore (D.repair (compile racy_src)))
   with _ -> ());
  Alcotest.(check bool) "plan restored after exception" false
    (FI.enabled FI.Detector_abort)

(* The two daemon-level faults.  [Worker_crash] has no fire site inside
   the pipeline — the driver must be entirely unaffected by it (the
   supervisor handles it; see test_serve.ml).  [Slow_stage] stalls an
   iteration without failing it, and an armed watchdog must be able to
   expire mid-stall. *)
let test_worker_crash_inert_in_pipeline () =
  let prog = compile racy_src in
  match checked_under [ FI.Worker_crash ] prog with
  | Error d -> Alcotest.failf "worker crash leaked into the driver: %a" Diag.pp d
  | Ok r ->
      Alcotest.(check bool) "converged" true r.converged;
      check_race_free "worker crash inert" r.program

let test_slow_stage_stalls_not_fails () =
  let prog = compile racy_src in
  let t0 = Obs.Clock.now_ns () in
  match checked_under [ FI.Slow_stage 60 ] prog with
  | Error d -> Alcotest.failf "slow stage became fatal: %a" Diag.pp d
  | Ok r ->
      let elapsed_ms =
        Int64.to_int
          (Int64.div (Int64.sub (Obs.Clock.now_ns ()) t0) 1_000_000L)
      in
      Alcotest.(check bool) "converged" true r.converged;
      Alcotest.(check bool) "no degradation from the stall alone" true
        (r.degradations = []);
      Alcotest.(check bool)
        (Fmt.str "really stalled (%d ms)" elapsed_ms)
        true (elapsed_ms >= 60)

let test_slow_stage_trips_watchdog () =
  let prog = compile racy_src in
  match
    Rt.Watchdog.with_timeout ~ms:(Some 30) (fun () ->
        checked_under [ FI.Slow_stage 500 ] prog)
  with
  | Error d ->
      Alcotest.(check bool) "watchdog maps to budget stage" true
        (d.Diag.stage = Diag.Budget)
  | Ok _ -> Alcotest.fail "a 30ms watchdog must fire inside a 500ms stall"

(* ------------------------------------------------------------------ *)
(* The never-crash property                                            *)
(* ------------------------------------------------------------------ *)

let qcheck_count =
  match
    Option.bind (Sys.getenv_opt "TDR_QCHECK_COUNT") int_of_string_opt
  with
  | Some n when n > 0 -> n
  | _ -> 40

(* Derive a fault plan + budgets deterministically from the seed, covering
   the clean configuration and every fault/budget combination. *)
let scenario_of_seed seed =
  let faults =
    List.filteri
      (fun i _ -> ((seed / 7) lsr i) land 1 = 1)
      [ FI.Interp_trap (50 + (seed mod 5000)); FI.Detector_abort;
        FI.Dp_timeout; FI.Place_unsat; FI.Insert_fail ]
  in
  let pick bit v =
    if ((seed / 3) lsr bit) land 1 = 1 then Some v else None
  in
  let budgets =
    {
      Guard.fuel = pick 5 (100 + (seed mod 10_000));
      Guard.sdpst_nodes = pick 6 (10 + (seed mod 500));
      Guard.dp_work = pick 7 (seed mod 5_000);
    }
  in
  (faults, budgets)

(* Satellite: the daemon's execution path under ANY two-fault combination
   — including the two supervisor-level faults ([Worker_crash],
   [Slow_stage]) the pipeline property above cannot cover — always
   reaches exactly one terminal status, never an uncaught exception and
   never a hang.  Runs through a real two-domain supervisor so crash +
   respawn + re-enqueue is part of the property. *)
let two_fault_pool = lazy
  (Serve.Supervisor.create ~workers:2 ~queue_capacity:64 ~cache_capacity:0
     ~backoff_ms:1 ~notify:(fun () -> ()) ())

let worker_two_fault_total =
  QCheck.Test.make
    ~name:"daemon worker: any two-fault combo reaches one terminal status"
    ~count:qcheck_count
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let module SP = Serve.Protocol in
      let sup = Lazy.force two_fault_pool in
      let faults_menu =
        [| FI.Interp_trap (50 + (seed mod 5000)); FI.Detector_abort;
           FI.Dp_timeout; FI.Place_unsat; FI.Insert_fail; FI.Worker_crash;
           FI.Slow_stage (seed mod 40) |]
      in
      let n = Array.length faults_menu in
      let f1 = faults_menu.(seed mod n)
      and f2 = faults_menu.((seed / 11) mod n) in
      let faults = if f1 = f2 then [ f1 ] else [ f1; f2 ] in
      let src = Benchsuite.Progen.generate ~seed () in
      let flags =
        { SP.default_flags with SP.faults; timeout_ms = Some 2_000 }
      in
      let spec =
        { SP.id = string_of_int seed; op = SP.Repair; src; flags }
      in
      match Serve.Supervisor.submit sup spec with
      | `Overloaded -> QCheck.Test.fail_report "bounded queue unexpectedly full"
      | `Accepted seq ->
          let deadline = Int64.add (Obs.Clock.now_ns ()) 30_000_000_000L in
          let rec wait () =
            Serve.Supervisor.reap sup;
            match
              List.find_opt
                (fun (c : Serve.Supervisor.completion) -> c.seq = seq)
                (Serve.Supervisor.completions sup)
            with
            | Some c -> c
            | None when Int64.compare (Obs.Clock.now_ns ()) deadline > 0 ->
                QCheck.Test.fail_reportf
                  "no terminal status within 30s under %a"
                  Fmt.(list ~sep:comma FI.pp_fault)
                  faults
            | None ->
                Unix.sleepf 0.005;
                wait ()
          in
          let c = wait () in
          (match c.outcome.Serve.Worker.status with
          | SP.Sok | SP.Sdegraded | SP.Sfailed -> true
          | SP.Soverloaded | SP.Scancelled ->
              QCheck.Test.fail_reportf "non-worker terminal status under %a"
                Fmt.(list ~sep:comma FI.pp_fault)
                faults))

let driver_total =
  QCheck.Test.make
    ~name:"repair_checked always terminates: converged or diagnosed"
    ~count:qcheck_count
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let src = Benchsuite.Progen.generate ~seed () in
      let prog = compile src in
      let faults, budgets = scenario_of_seed seed in
      match
        FI.with_faults faults (fun () -> D.repair_checked ~budgets prog)
      with
      | exception e ->
          QCheck.Test.fail_reportf "uncaught exception: %s"
            (Printexc.to_string e)
      | Error _ -> true (* structured non-converged report *)
      | Ok r ->
          (* a repair that claims convergence must be race-free even when
             it degraded *)
          (not r.converged) || race_count r.program = 0)

let () =
  Alcotest.run "faults"
    [
      ( "degradation",
        [
          Alcotest.test_case "interval-cover fallback" `Quick
            test_interval_cover_fallback;
          Alcotest.test_case "affordable dp not degraded" `Quick
            test_dp_budget_affordable_not_degraded;
          Alcotest.test_case "sdpst budget on mergesort" `Slow
            test_sdpst_budget_mergesort;
          Alcotest.test_case "fuel budget" `Quick test_fuel_budget;
        ] );
      ( "injection",
        [
          Alcotest.test_case "interp trap" `Quick test_interp_trap;
          Alcotest.test_case "detector abort" `Quick test_detector_abort;
          Alcotest.test_case "place unsat" `Quick test_place_unsat;
          Alcotest.test_case "insert fail" `Quick test_insert_fail;
          Alcotest.test_case "dp timeout degrades" `Quick
            test_dp_timeout_degrades;
          Alcotest.test_case "plan restored" `Quick test_plan_restored;
          Alcotest.test_case "worker crash inert in pipeline" `Quick
            test_worker_crash_inert_in_pipeline;
          Alcotest.test_case "slow stage stalls not fails" `Quick
            test_slow_stage_stalls_not_fails;
          Alcotest.test_case "slow stage trips watchdog" `Quick
            test_slow_stage_trips_watchdog;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest driver_total;
          QCheck_alcotest.to_alcotest worker_two_fault_total;
        ] );
    ]
