(* Coverage sweep for small utility corners not exercised elsewhere:
   container edge cases, pretty-printers of auxiliary types, AST helpers,
   and detector bookkeeping. *)

let compile = Mhj.Front.compile

(* ------------------------------------------------------------------ *)
(* Containers                                                          *)
(* ------------------------------------------------------------------ *)

let test_vec_clear_and_refill () =
  let v = Tdrutil.Vec.of_list [ 1; 2; 3 ] in
  Tdrutil.Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Tdrutil.Vec.length v);
  Alcotest.(check bool) "empty" true (Tdrutil.Vec.is_empty v);
  Tdrutil.Vec.push v 9;
  Alcotest.(check (list int)) "refill works" [ 9 ] (Tdrutil.Vec.to_list v)

let test_vec_find_exists_negative () =
  let v = Tdrutil.Vec.of_list [ 1; 3; 5 ] in
  Alcotest.(check (option int)) "find none" None
    (Tdrutil.Vec.find_index (fun x -> x mod 2 = 0) v);
  Alcotest.(check bool) "exists false" false
    (Tdrutil.Vec.exists (fun x -> x > 100) v)

let test_prng_choose_singleton () =
  let r = Tdrutil.Prng.create ~seed:5 in
  Alcotest.(check int) "singleton" 42 (Tdrutil.Prng.choose r [ 42 ])

(* ------------------------------------------------------------------ *)
(* Locations and auxiliary printers                                    *)
(* ------------------------------------------------------------------ *)

let test_loc () =
  let a = Mhj.Loc.make ~line:1 ~col:2 ~offset:1 in
  let b = Mhj.Loc.make ~line:1 ~col:5 ~offset:4 in
  Alcotest.(check bool) "ordering by offset" true (Mhj.Loc.compare a b < 0);
  Alcotest.(check bool) "equal to itself" true (Mhj.Loc.equal a a);
  Alcotest.(check string) "renders line:col" "1:2" (Mhj.Loc.to_string a);
  Alcotest.(check string) "dummy renders" "<generated>"
    (Mhj.Loc.to_string Mhj.Loc.dummy);
  Alcotest.(check bool) "dummy is dummy" true (Mhj.Loc.is_dummy Mhj.Loc.dummy)

let test_aux_printers () =
  Alcotest.(check string) "access read" "read"
    (Fmt.str "%a" Rt.Monitor.pp_access Rt.Monitor.Read);
  Alcotest.(check string) "access write" "write"
    (Fmt.str "%a" Rt.Monitor.pp_access Rt.Monitor.Write);
  Alcotest.(check string) "addr global" "g"
    (Fmt.str "%a" Rt.Addr.pp (Rt.Addr.Global "g"));
  Alcotest.(check string) "addr cell" "arr3[7]"
    (Fmt.str "%a" Rt.Addr.pp (Rt.Addr.Cell (3, 7)));
  Alcotest.(check string) "steal policy" "help-first"
    (Fmt.str "%a" Compgraph.Steal.pp_policy Compgraph.Steal.Help_first);
  Alcotest.(check string) "detector mode" "SRW"
    (Fmt.str "%a" Espbags.Detector.pp_mode Espbags.Detector.Srw)

let test_addr_table () =
  let t = Rt.Addr.Table.create 4 in
  Rt.Addr.Table.add t (Rt.Addr.Cell (1, 2)) "a";
  Rt.Addr.Table.add t (Rt.Addr.Global "x") "b";
  Alcotest.(check (option string)) "cell hit" (Some "a")
    (Rt.Addr.Table.find_opt t (Rt.Addr.Cell (1, 2)));
  Alcotest.(check (option string)) "cell miss" None
    (Rt.Addr.Table.find_opt t (Rt.Addr.Cell (1, 3)));
  Alcotest.(check bool) "global and cell distinct" false
    (Rt.Addr.equal (Rt.Addr.Global "x") (Rt.Addr.Cell (0, 0)))

(* ------------------------------------------------------------------ *)
(* AST helpers                                                         *)
(* ------------------------------------------------------------------ *)

let fib_src =
  {|
def fib(n: int): int {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
def main() { finish { async { print(fib(5)); } } }
|}

let test_ast_helpers () =
  let p = compile fib_src in
  let sids = Mhj.Ast.all_sids p in
  Alcotest.(check bool) "sids unique" true
    (List.length sids = List.length (List.sort_uniq compare sids));
  Alcotest.(check bool) "find_func hit" true
    (Option.is_some (Mhj.Ast.find_func p "fib"));
  Alcotest.(check bool) "find_func miss" true
    (Option.is_none (Mhj.Ast.find_func p "nope"));
  Alcotest.(check int) "asyncs" 1 (Mhj.Ast.count_asyncs p);
  Alcotest.(check int) "finishes" 1 (Mhj.Ast.count_finishes p);
  Alcotest.(check string) "ty printer" "int[][]"
    (Mhj.Ast.string_of_ty (Mhj.Ast.TArr (Mhj.Ast.TArr Mhj.Ast.TInt)))

let test_elision_idempotent () =
  let p = compile fib_src in
  let e1 = Mhj.Elision.elide p in
  let e2 = Mhj.Elision.elide e1 in
  Alcotest.(check string) "idempotent"
    (Mhj.Pretty.program_to_string e1)
    (Mhj.Pretty.program_to_string e2)

let test_normalize_benchmarks_stable () =
  List.iter
    (fun (b : Benchsuite.Bench.t) ->
      let p = Benchsuite.Bench.repair_program b in
      Alcotest.(check bool)
        (b.name ^ " is normalized")
        true
        (Mhj.Normalize.is_normalized p))
    Benchsuite.Suite.all

(* ------------------------------------------------------------------ *)
(* Detector bookkeeping and metrics                                    *)
(* ------------------------------------------------------------------ *)

let test_detector_stats () =
  let prog =
    compile "var x: int = 0;\ndef main() { async { x = 1; } print(x); }"
  in
  let det, _ = Espbags.Detector.detect Espbags.Detector.Mrw prog in
  Alcotest.(check bool) "not clean" false (Espbags.Detector.clean det);
  Alcotest.(check bool) "accesses counted" true
    (det.Espbags.Detector.n_accesses >= 2);
  Alcotest.(check int) "one location" 1 det.Espbags.Detector.n_locations;
  let det2, _ =
    Espbags.Detector.detect Espbags.Detector.Mrw
      (compile "def main() { print(1); }")
  in
  Alcotest.(check bool) "clean program" true (Espbags.Detector.clean det2)

let test_parallelism_metric () =
  let res =
    Rt.Interp.run
      (compile "def main() { for (i = 0 to 9) { async { work(100); } } }")
  in
  let g = Compgraph.Graph.of_sdpst res.tree in
  Alcotest.(check bool) "parallelism > 5" true
    (Compgraph.Metrics.parallelism g > 5.0);
  let serial =
    Rt.Interp.run (compile "def main() { work(100); work(100); }")
  in
  let gs = Compgraph.Graph.of_sdpst serial.tree in
  Alcotest.(check bool) "serial parallelism ~ 1" true
    (Compgraph.Metrics.parallelism gs < 1.1)

let test_race_static_count () =
  let prog =
    compile
      {|
var a: int[] = new int[4];
def main() {
  for (i = 0 to 3) { async { a[i] = i; } }
  print(a[0] + a[1] + a[2] + a[3]);
}
|}
  in
  let det, _ = Espbags.Detector.detect Espbags.Detector.Mrw prog in
  let races = Espbags.Detector.races det in
  (* four dynamic races but a single static (source stmt, sink stmt) pair *)
  Alcotest.(check int) "dynamic" 4 (List.length races);
  Alcotest.(check int) "static" 1 (Espbags.Race.count_static races)

let test_builtin_table () =
  Alcotest.(check bool) "work is builtin" true (Mhj.Builtins.is_builtin "work");
  Alcotest.(check bool) "nope is not" false (Mhj.Builtins.is_builtin "nope");
  match Mhj.Builtins.find "cas" with
  | Some sg ->
      Alcotest.(check int) "cas arity" 4 (List.length sg.args);
      Alcotest.(check bool) "cas returns bool" true (sg.ret = Mhj.Ast.TBool)
  | None -> Alcotest.fail "cas must be registered"

let () =
  Alcotest.run "misc"
    [
      ( "containers",
        [
          Alcotest.test_case "vec clear/refill" `Quick
            test_vec_clear_and_refill;
          Alcotest.test_case "vec negative queries" `Quick
            test_vec_find_exists_negative;
          Alcotest.test_case "prng choose singleton" `Quick
            test_prng_choose_singleton;
        ] );
      ( "printers",
        [
          Alcotest.test_case "locations" `Quick test_loc;
          Alcotest.test_case "auxiliary pp" `Quick test_aux_printers;
          Alcotest.test_case "addr table" `Quick test_addr_table;
        ] );
      ( "ast",
        [
          Alcotest.test_case "helpers" `Quick test_ast_helpers;
          Alcotest.test_case "elision idempotent" `Quick
            test_elision_idempotent;
          Alcotest.test_case "benchmarks normalized" `Quick
            test_normalize_benchmarks_stable;
        ] );
      ( "stats",
        [
          Alcotest.test_case "detector stats" `Quick test_detector_stats;
          Alcotest.test_case "parallelism metric" `Quick
            test_parallelism_metric;
          Alcotest.test_case "static race count" `Quick
            test_race_static_count;
          Alcotest.test_case "builtin table" `Quick test_builtin_table;
        ] );
    ]
