(* The paper's §7.1 experiment, at test-friendly input sizes: for every
   Table 1 benchmark, (a) the expert version is race-free, (b) stripping
   its finishes introduces races, (c) the tool repairs the stripped
   version in few iterations, (d) the repaired program is race-free,
   computes the same outputs, and restores the expert critical path. *)

(* Small-size variants of each benchmark so the full matrix stays fast. *)
let small_sources : (string * string * bool) list =
  (* name, source, stripping-introduces-races *)
  [
    ("Fibonacci", Benchsuite.Fibonacci.source ~n:8, true);
    ("Quicksort", Benchsuite.Quicksort.source ~n:80 ~seed:11, true);
    ("Mergesort", Benchsuite.Mergesort.source ~n:48 ~seed:2, true);
    ("Spanning Tree", Benchsuite.Spanning_tree.source ~nodes:40 ~neighbors:3, true);
    ("Nqueens", Benchsuite.Nqueens.source ~n:5, true);
    ("Series", Benchsuite.Series.source ~rows:6 ~points:5, true);
    ("SOR", Benchsuite.Sor.source ~size:10 ~iters:2, true);
    ("Crypt", Benchsuite.Crypt.source ~n:64 ~chunks:4, true);
    ("Sparse", Benchsuite.Sparse.source ~size:16 ~nz_per_row:3 ~iters:2 ~bands:4, true);
    ("LUFact", Benchsuite.Lufact.source ~n:8, true);
    ("FannKuch", Benchsuite.Fannkuch.source ~n:4, true);
    ("Mandelbrot", Benchsuite.Mandelbrot.source ~size:10 ~max_iter:8, true);
  ]

let races prog =
  Espbags.Detector.race_count
    (fst (Espbags.Detector.detect Espbags.Detector.Mrw prog))

let cpl prog = Sdpst.Analysis.critical_path_length (Rt.Interp.run prog).tree

let check_benchmark (name, src, expect_races) () =
  let expert = Mhj.Front.compile src in
  Alcotest.(check int) (name ^ ": expert race-free") 0 (races expert);
  let stripped = Mhj.Transform.strip_finishes expert in
  if expect_races then
    Alcotest.(check bool)
      (name ^ ": stripping introduces races")
      true
      (races stripped > 0);
  let report = Repair.Driver.repair stripped in
  Alcotest.(check bool) (name ^ ": converged") true report.converged;
  Alcotest.(check bool)
    (name ^ ": at most 2 repair iterations")
    true
    (List.length report.iterations <= 2);
  Alcotest.(check int) (name ^ ": repaired race-free") 0 (races report.program);
  let e = Rt.Interp.run expert and r = Rt.Interp.run report.program in
  Alcotest.(check string) (name ^ ": same output") e.output r.output;
  (* Parallelism restored: the repaired CPL is within 15% of the expert's
     (it is often exactly equal; small deviations come from cost-model
     bookkeeping of the extra finish nodes). *)
  let ce = cpl expert and cr = cpl report.program in
  if cr > ce + (ce * 15 / 100) + 10 then
    Alcotest.failf "%s: repaired CPL %d much worse than expert %d" name cr ce

let test_table1_inventory () =
  Alcotest.(check int) "twelve benchmarks" 12 (List.length Benchsuite.Suite.all);
  let names = Benchsuite.Suite.names in
  List.iter
    (fun expected ->
      if not (List.mem expected names) then
        Alcotest.failf "missing benchmark %s" expected)
    [
      "Fibonacci"; "Quicksort"; "Mergesort"; "Spanning Tree"; "Nqueens";
      "Series"; "SOR"; "Crypt"; "Sparse"; "LUFact"; "FannKuch"; "Mandelbrot";
    ];
  Alcotest.(check (option string))
    "find is case-insensitive" (Some "Fibonacci")
    (Option.map
       (fun (b : Benchsuite.Bench.t) -> b.name)
       (Benchsuite.Suite.find "fibonacci"))

let test_repair_sizes_compile () =
  List.iter
    (fun (b : Benchsuite.Bench.t) ->
      match Benchsuite.Bench.repair_program b with
      | exception e ->
          Alcotest.failf "%s (repair size) does not compile: %s" b.name
            (Printexc.to_string e)
      | _ -> ())
    Benchsuite.Suite.all

let test_perf_sizes_compile () =
  List.iter
    (fun (b : Benchsuite.Bench.t) ->
      match Benchsuite.Bench.perf_program b with
      | exception e ->
          Alcotest.failf "%s (perf size) does not compile: %s" b.name
            (Printexc.to_string e)
      | _ -> ())
    Benchsuite.Suite.all

let () =
  Alcotest.run "benchsuite"
    [
      ( "inventory",
        [
          Alcotest.test_case "Table 1" `Quick test_table1_inventory;
          Alcotest.test_case "repair sizes compile" `Quick
            test_repair_sizes_compile;
          Alcotest.test_case "perf sizes compile" `Quick
            test_perf_sizes_compile;
        ] );
      ( "repair",
        List.map
          (fun ((name, _, _) as case) ->
            Alcotest.test_case name `Quick (check_benchmark case))
          small_sources );
    ]
