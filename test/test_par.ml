(* Parallel execution backend (lib/par): work-stealing deque, the
   domains/fuzz engine against the sequential interpreter, deterministic
   schedule replay, and the schedule-fuzzing differential layer.

   The acceptance property of the backend is differential: race-free
   programs (the paper's Problem 1 output) must produce the sequential
   interpreter's printed-line multiset and final global state under
   EVERY schedule, while racy programs are allowed — and at least some
   are expected — to diverge.  `dune runtest` uses a bounded number of
   generated programs; the @ci alias (TDR_QCHECK_COUNT, TDR_PAR_DOMAINS)
   runs the deep pass: 300 programs x 10 schedules on 2 domains. *)

let compile = Mhj.Front.compile

let generate seed = Benchsuite.Progen.generate ~seed ()

let count =
  Option.value ~default:60
    (Option.bind (Sys.getenv_opt "TDR_QCHECK_COUNT") int_of_string_opt)

let par_domains =
  Option.value ~default:2
    (Option.bind (Sys.getenv_opt "TDR_PAR_DOMAINS") int_of_string_opt)

(* Observable behavior: printed-line multiset + final global state.
   Line *order* is schedule-dependent even race-free (prints from
   parallel tasks), so only the multiset is compared. *)
let observation (output, globals) =
  (Par.Validate.sorted_lines output, Rt.Value.digest_globals globals)

let seq_observation prog =
  let r = Rt.Interp.run prog in
  (observation (r.output, r.globals), r.work)

let par_observation ~mode prog =
  let r = Par.Engine.run ~mode prog in
  (observation (r.Par.Engine.output, r.globals), r.work)

(* ------------------------------------------------------------------ *)
(* Deque                                                               *)
(* ------------------------------------------------------------------ *)

let test_deque_owner () =
  let d = Par.Deque.create ~capacity:2 () in
  Alcotest.(check (option int)) "empty pop" None (Par.Deque.pop d);
  for i = 1 to 100 do
    Par.Deque.push d i
  done;
  Alcotest.(check int) "size" 100 (Par.Deque.size d);
  (* owner end is LIFO *)
  Alcotest.(check (option int)) "pop newest" (Some 100) (Par.Deque.pop d);
  (* thief end is FIFO *)
  Alcotest.(check (option int)) "steal oldest" (Some 1) (Par.Deque.steal d);
  Alcotest.(check (option int)) "steal next" (Some 2) (Par.Deque.steal d);
  Alcotest.(check (option int)) "pop next" (Some 99) (Par.Deque.pop d);
  let rec drain acc =
    match Par.Deque.pop d with None -> acc | Some v -> drain (v :: acc)
  in
  Alcotest.(check int) "rest drains" 96 (List.length (drain []));
  Alcotest.(check (option int)) "empty again" None (Par.Deque.pop d)

(* Owner pushes/pops while thief domains steal: every element must be
   taken exactly once across all parties. *)
let test_deque_stress () =
  let n = 20_000 and n_thieves = 3 in
  let d = Par.Deque.create () in
  let done_flag = Atomic.make false in
  let thief () =
    let taken = ref [] in
    while not (Atomic.get done_flag) do
      match Par.Deque.steal d with
      | Some v -> taken := v :: !taken
      | None -> Domain.cpu_relax ()
    done;
    (* final drain so nothing is stranded when the owner stops early *)
    let rec drain () =
      match Par.Deque.steal d with
      | Some v ->
          taken := v :: !taken;
          drain ()
      | None -> ()
    in
    drain ();
    !taken
  in
  let thieves = Array.init n_thieves (fun _ -> Domain.spawn thief) in
  let mine = ref [] in
  for i = 1 to n do
    Par.Deque.push d i;
    (* pop roughly every third push to fight the thieves on both ends *)
    if i mod 3 = 0 then
      match Par.Deque.pop d with
      | Some v -> mine := v :: !mine
      | None -> ()
  done;
  Atomic.set done_flag true;
  let stolen = Array.to_list (Array.map Domain.join thieves) in
  let rec drain () =
    match Par.Deque.pop d with
    | Some v ->
        mine := v :: !mine;
        drain ()
    | None -> ()
  in
  drain ();
  let all = List.concat (!mine :: stolen) in
  Alcotest.(check int) "every element taken once" n (List.length all);
  Alcotest.(check (list int)) "no duplicates, no losses"
    (List.init n (fun i -> i + 1))
    (List.sort compare all)

(* ------------------------------------------------------------------ *)
(* Engine vs. sequential interpreter                                   *)
(* ------------------------------------------------------------------ *)

(* Expert-synchronized benchsuite programs are race-free: every mode and
   every seed must reproduce the sequential observation, and charge
   exactly the same total work. *)
let test_engine_matches_interp () =
  List.iter
    (fun name ->
      let b = Option.get (Benchsuite.Suite.find name) in
      let prog = Benchsuite.Bench.repair_program b in
      let obs, work = seq_observation prog in
      for seed = 1 to 3 do
        let fobs, fwork =
          par_observation ~mode:(Par.Engine.Fuzz { seed }) prog
        in
        Alcotest.(check (pair (list string) string))
          (Fmt.str "%s fuzz seed %d" name seed)
          obs fobs;
        Alcotest.(check int) (Fmt.str "%s work seed %d" name seed) work fwork
      done;
      let dobs, dwork =
        par_observation
          ~mode:(Par.Engine.Domains { n = par_domains; seed = 1 })
          prog
      in
      Alcotest.(check (pair (list string) string))
        (Fmt.str "%s on %d domains" name par_domains)
        obs dobs;
      Alcotest.(check int) (Fmt.str "%s domains work" name) work dwork)
    [ "Fibonacci"; "Series"; "Nqueens" ]

(* The same seed must replay the same schedule bit-for-bit — including
   the raw (unsorted) output order — even on a racy program. *)
let racy_src =
  "var sum: int = 0;\n\
   def main() {\n\
  \  val a: int[] = new int[8];\n\
  \  finish {\n\
  \    for (i = 0 to 7) {\n\
  \      async { a[i] = i; sum = sum + i; print(sum); }\n\
  \    }\n\
  \  }\n\
  \  print(sum);\n\
   }"

let test_fuzz_replay_deterministic () =
  let prog = compile racy_src in
  for seed = 0 to 4 do
    let r1 = Par.Engine.run ~mode:(Par.Engine.Fuzz { seed }) prog in
    let r2 = Par.Engine.run ~mode:(Par.Engine.Fuzz { seed }) prog in
    Alcotest.(check string)
      (Fmt.str "output replay, seed %d" seed)
      r1.Par.Engine.output r2.Par.Engine.output;
    Alcotest.(check string)
      (Fmt.str "state replay, seed %d" seed)
      r1.digest r2.digest
  done

let test_out_of_fuel () =
  let b = Option.get (Benchsuite.Suite.find "Fibonacci") in
  let prog = Benchsuite.Bench.repair_program b in
  Alcotest.check_raises "fuel exhausts in parallel too"
    Rt.Interp.Out_of_fuel (fun () ->
      ignore (Par.Engine.run ~fuel:50 ~mode:(Par.Engine.Fuzz { seed = 1 }) prog))

(* ------------------------------------------------------------------ *)
(* Differential schedule fuzzing over generated programs               *)
(* ------------------------------------------------------------------ *)

let schedules_per_program = 10

(* The backbone differential sweep (deterministic, seeded): repair each
   generated program, then require every fuzzed schedule — and a real
   multi-domain run — to reproduce the sequential observation of the
   repaired (race-free) program. *)
let test_differential_racefree () =
  for seed = 1 to count do
    let prog = compile (generate seed) in
    let report = Repair.Driver.repair prog in
    if report.converged then begin
      let obs, work = seq_observation report.program in
      for k = 0 to schedules_per_program - 1 do
        let fobs, fwork =
          par_observation
            ~mode:(Par.Engine.Fuzz { seed = (1000 * seed) + k })
            report.program
        in
        Alcotest.(check (pair (list string) string))
          (Fmt.str "program %d, schedule %d" seed k)
          obs fobs;
        Alcotest.(check int)
          (Fmt.str "program %d, schedule %d work" seed k)
          work fwork
      done;
      let dobs, _ =
        par_observation
          ~mode:(Par.Engine.Domains { n = par_domains; seed })
          report.program
      in
      Alcotest.(check (pair (list string) string))
        (Fmt.str "program %d on %d domains" seed par_domains)
        obs dobs
    end
  done

(* Adversarial: racy programs.  Post-repair, --validate-par semantics
   (Par.Validate) must never report a divergence; pre-repair, at least
   one racy program must actually diverge under fuzzing — otherwise the
   fuzzer explores too little to be worth anything. *)
let test_adversarial_racy () =
  let racy_target = 15 in
  let racy_seen = ref 0 in
  let pre_repair_divergence = ref 0 in
  let seed = ref 0 in
  while !racy_seen < racy_target && !seed < 400 do
    incr seed;
    let seed = !seed in
    let prog = compile (generate seed) in
    let report = Repair.Driver.repair prog in
    let was_racy =
      match report.iterations with it :: _ -> it.n_races > 0 | [] -> false
    in
    if was_racy then begin
      incr racy_seen;
      let pre = Par.Validate.check ~schedules:schedules_per_program
          ~seed:(7000 + seed) prog
      in
      if pre.divergences <> [] then incr pre_repair_divergence;
      if report.converged then begin
        let post =
          Par.Validate.check ~schedules:schedules_per_program
            ~seed:(7000 + seed) report.program
        in
        Alcotest.(check bool)
          (Fmt.str "repaired program %d never diverges" seed)
          true (Par.Validate.ok post)
      end
    end
  done;
  Alcotest.(check int) "found enough racy programs" racy_target !racy_seen;
  Alcotest.(check bool)
    (Fmt.str "some racy program diverges pre-repair (%d of %d did)"
       !pre_repair_divergence racy_target)
    true
    (!pre_repair_divergence > 0)

let test_validate_budget_skip () =
  let prog = compile racy_src in
  let v = Par.Validate.check ~budget_ms:0 ~schedules:10 prog in
  Alcotest.(check int) "nothing ran" 0 v.ran;
  Alcotest.(check int) "all skipped" 10 v.skipped;
  Alcotest.(check bool) "not ok" false (Par.Validate.ok v);
  Alcotest.(check bool) "but no divergences" true (v.divergences = [])

(* Driver integration: validate_par lands in the report and skipped
   schedules surface as a degradation. *)
let test_driver_validate_par () =
  let prog = compile racy_src in
  let report =
    Repair.Driver.repair
      ~validate_par:Par.Validate.default_request prog
  in
  Alcotest.(check bool) "converged" true report.converged;
  (match report.validated_par with
  | Some v ->
      Alcotest.(check bool) "validation ok" true (Par.Validate.ok v);
      Alcotest.(check int) "all schedules ran" 10 v.ran
  | None -> Alcotest.fail "validated_par missing from report");
  Alcotest.(check bool) "no degradation" true (report.degradations = []);
  let skipped =
    Repair.Driver.repair
      ~validate_par:{ Par.Validate.schedules = 10; seed = 1; budget_ms = Some 0 }
      prog
  in
  match skipped.degradations with
  | [ Repair.Guard.Validate_par_skipped { ran = 0; requested = 10 } ] -> ()
  | ds ->
      Alcotest.fail
        (Fmt.str "expected Validate_par_skipped, got %a"
           (Fmt.list Repair.Guard.pp_degradation)
           ds)

(* Parallel race detection: the vector-clock detector attached to the
   engine must report the same static race set as the sequential MRW
   oracle on EVERY schedule — the clock relation encodes the program's
   async-finish structure, not the observed interleaving.  Programs are
   generated with deterministic branches ([det_branches]) so a racy
   program still executes the same access set under every schedule;
   addresses and control flow are schedule-independent by construction,
   only values race. *)
let test_parallel_detection () =
  let cfg = { Benchsuite.Progen.default with det_branches = true } in
  for seed = 1 to count do
    let prog = compile (Benchsuite.Progen.generate ~cfg ~seed ()) in
    let oracle_det, _ = Espbags.Detector.detect Espbags.Detector.Mrw prog in
    let oracle =
      List.sort_uniq compare
        (List.map Espbags.Race.static_key_of_race
           (Espbags.Detector.races oracle_det))
    in
    let check what det =
      let got = Vclock.Pardet.races det in
      if got <> oracle then
        Alcotest.fail
          (Fmt.str
             "program %d, %s: parallel race set differs@.par (%d): \
              @[%a@]@.seq (%d): @[%a@]"
             seed what (List.length got)
             Fmt.(list ~sep:comma Espbags.Race.pp_static_key)
             got (List.length oracle)
             Fmt.(list ~sep:comma Espbags.Race.pp_static_key)
             oracle)
    in
    for k = 0 to schedules_per_program - 1 do
      let det, _ =
        Vclock.Pardet.detect
          ~mode:(Par.Engine.Fuzz { seed = (1000 * seed) + k })
          prog
      in
      check (Fmt.str "fuzz schedule %d" k) det
    done;
    let det, _ =
      Vclock.Pardet.detect
        ~mode:(Par.Engine.Domains { n = par_domains; seed })
        prog
    in
    check (Fmt.str "%d domains" par_domains) det
  done

(* qcheck variant with uniformly random program seeds, for coverage the
   fixed 1..count sweep cannot give. *)
let qcheck_differential =
  QCheck.Test.make ~name:"random race-free program: schedules agree"
    ~count:(min 30 count)
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let prog = compile (generate seed) in
      let report = Repair.Driver.repair prog in
      (not report.converged)
      || Par.Validate.ok
           (Par.Validate.check ~schedules:3 ~seed report.program))

let () =
  Alcotest.run "par"
    [
      ( "deque",
        [
          Alcotest.test_case "owner LIFO, thief FIFO" `Quick test_deque_owner;
          Alcotest.test_case "concurrent stress" `Quick test_deque_stress;
        ] );
      ( "engine",
        [
          Alcotest.test_case "matches interpreter on benchsuite" `Quick
            test_engine_matches_interp;
          Alcotest.test_case "fuzz replay is deterministic" `Quick
            test_fuzz_replay_deterministic;
          Alcotest.test_case "out of fuel" `Quick test_out_of_fuel;
        ] );
      ( "differential",
        [
          Alcotest.test_case "race-free sweep" `Slow
            test_differential_racefree;
          Alcotest.test_case "adversarial racy programs" `Slow
            test_adversarial_racy;
          Alcotest.test_case "parallel detection matches oracle" `Slow
            test_parallel_detection;
          QCheck_alcotest.to_alcotest qcheck_differential;
        ] );
      ( "validate",
        [
          Alcotest.test_case "budget skip" `Quick test_validate_budget_skip;
          Alcotest.test_case "driver integration" `Quick
            test_driver_validate_par;
        ] );
    ]
