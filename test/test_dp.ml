(* Tests for the dynamic-programming finish placement (paper Algorithms
   1-3): the Figure 3/4 worked example, hand-checked small instances, and
   a qcheck comparison against the brute-force optimality oracle
   (Theorem 2). *)

(* Build a synthetic dependence graph without an execution: a chain of
   fake S-DPST nodes under one NS-LCA. *)
let mk_graph ~asyncs ~times ~edges : Repair.Depgraph.t =
  let n = Array.length times in
  assert (Array.length asyncs = n);
  let tree = Sdpst.Node.create_tree ~main_bid:0 in
  let root = tree.Sdpst.Node.root in
  let nodes =
    Array.init n (fun i ->
        let kind =
          if asyncs.(i) then Sdpst.Node.Async else Sdpst.Node.Step
        in
        let c =
          Sdpst.Node.new_child tree ~parent:root ~kind ~origin_bid:0
            ~origin_idx:i ()
        in
        c.Sdpst.Node.cost <- times.(i);
        (* interior async nodes get a step child carrying the time *)
        if asyncs.(i) then begin
          let s =
            Sdpst.Node.new_child tree ~parent:c ~kind:Sdpst.Node.Step
              ~origin_bid:(1000 + i) ~origin_idx:0 ()
          in
          s.Sdpst.Node.cost <- times.(i);
          c.Sdpst.Node.cost <- 0
        end;
        c)
  in
  ignore nodes;
  (* attach race edges between the steps *)
  let step_of i =
    let c = Tdrutil.Vec.get root.Sdpst.Node.children i in
    if Sdpst.Node.is_step c then c else Tdrutil.Vec.get c.Sdpst.Node.children 0
  in
  let races =
    List.map
      (fun (i, j) ->
        Espbags.Race.make ~src:(step_of i) ~sink:(step_of j)
          ~addr:(Rt.Addr.Global "x") ~kind:Espbags.Race.Write_read)
      edges
  in
  let span, _ = Sdpst.Analysis.span_memo () in
  Repair.Depgraph.build ~coalesce:false ~span root races

(* ------------------------------------------------------------------ *)
(* Figure 3/4: the paper's worked example                              *)
(* ------------------------------------------------------------------ *)

let figure3 () =
  (* A B C D E F with times 500/10/10/400/600/500, deps B->D, A->F, D->F *)
  mk_graph
    ~asyncs:[| true; true; true; true; true; true |]
    ~times:[| 500; 10; 10; 400; 600; 500 |]
    ~edges:[ (1, 3); (0, 5); (3, 5) ]

let test_figure4_placement_costs () =
  let g = figure3 () in
  let eval = Repair.Dp_place.eval_placement g in
  (* Figure 4, 0-based intervals; parentheses in the paper are finishes *)
  Alcotest.(check int) "( A ) ( B ) C ( D ) E F" 1510
    (eval [ (0, 0); (1, 1); (3, 3) ]);
  Alcotest.(check int) "( A B ) C ( D ) E F" 1500
    (eval [ (0, 1); (3, 3) ]);
  Alcotest.(check int) "( A B C ) ( D ) E F" 1500
    (eval [ (0, 2); (3, 3) ]);
  Alcotest.(check int) "( A ( B ) C D E ) F" 1110
    (eval [ (0, 4); (1, 1) ])

let test_figure3_dp_optimum () =
  let g = figure3 () in
  let out = Repair.Dp_place.solve g in
  (* The DP finds a placement better than all four listed in Figure 4:
     finish (A (B) C D) E F with completion 1100. *)
  Alcotest.(check int) "optimal cost" 1100 out.cost;
  Alcotest.(check bool)
    "resolves all edges" true
    (Repair.Dp_place.resolves_all g out.finishes);
  Alcotest.(check int) "eval matches cost" out.cost
    (Repair.Dp_place.eval_placement g out.finishes);
  (* and the brute-force oracle agrees *)
  match Repair.Brute.solve g with
  | Some (best, _) -> Alcotest.(check int) "oracle agrees" best out.cost
  | None -> Alcotest.fail "oracle found no placement"

(* ------------------------------------------------------------------ *)
(* Small hand-checked cases                                            *)
(* ------------------------------------------------------------------ *)

let test_no_edges () =
  let g =
    mk_graph ~asyncs:[| true; true |] ~times:[| 5; 9 |] ~edges:[]
  in
  let out = Repair.Dp_place.solve g in
  Alcotest.(check int) "cost is max span" 9 out.cost;
  Alcotest.(check (list (pair int int))) "no finishes" [] out.finishes

let test_single_edge () =
  let g =
    mk_graph ~asyncs:[| true; true |] ~times:[| 5; 9 |] ~edges:[ (0, 1) ]
  in
  let out = Repair.Dp_place.solve g in
  Alcotest.(check int) "serialized" 14 out.cost;
  Alcotest.(check (list (pair int int))) "finish around first" [ (0, 0) ]
    out.finishes

let test_step_sink () =
  (* async writes, step reads: finish around the async *)
  let g =
    mk_graph ~asyncs:[| true; false |] ~times:[| 7; 3 |] ~edges:[ (0, 1) ]
  in
  let out = Repair.Dp_place.solve g in
  Alcotest.(check int) "cost" 10 out.cost;
  Alcotest.(check (list (pair int int))) "finish" [ (0, 0) ] out.finishes

let test_unsatisfiable () =
  let g =
    mk_graph ~asyncs:[| true; true |] ~times:[| 5; 9 |] ~edges:[ (0, 1) ]
  in
  match Repair.Dp_place.solve ~valid:(fun ~i:_ ~j:_ -> false) g with
  | exception Repair.Dp_place.Unsatisfiable _ -> ()
  | _ -> Alcotest.fail "expected Unsatisfiable"

let test_validity_restricts () =
  (* forbid the tight (0,0) wrap; the DP must find a different cover *)
  let g =
    mk_graph
      ~asyncs:[| true; true; true |]
      ~times:[| 5; 9; 4 |]
      ~edges:[ (0, 2) ]
  in
  let valid ~i ~j = not (i = 0 && j = 0) in
  let out = Repair.Dp_place.solve ~valid g in
  Alcotest.(check bool)
    "resolves via (0,1)" true
    (Repair.Dp_place.resolves_all g out.finishes);
  List.iter
    (fun (s, e) -> if s = 0 && e = 0 then Alcotest.fail "used invalid wrap")
    out.finishes

let test_eval_overlap_rejected () =
  let g =
    mk_graph
      ~asyncs:[| true; true; true; true |]
      ~times:[| 5; 9; 4; 2 |]
      ~edges:[]
  in
  (* Nested and disjoint inputs are fine... *)
  ignore (Repair.Dp_place.eval_placement g [ (0, 3); (1, 2); (1, 1) ]);
  ignore (Repair.Dp_place.eval_placement g [ (0, 1); (2, 3) ]);
  (* ...but a crossing pair must be rejected, not silently mis-scored. *)
  List.iter
    (fun ivs ->
      match Repair.Dp_place.eval_placement g ivs with
      | exception Invalid_argument _ -> ()
      | cost ->
          Alcotest.failf "overlapping intervals scored as %d instead of \
                          raising" cost)
    [ [ (0, 2); (1, 3) ]; [ (0, 1); (1, 2) ]; [ (1, 3); (0, 1) ] ]

(* ------------------------------------------------------------------ *)
(* Oracle comparison (Theorem 2)                                       *)
(* ------------------------------------------------------------------ *)

let graph_gen =
  QCheck.Gen.(
    sized_size (int_range 2 6) (fun n ->
        let* asyncs = array_size (return n) bool in
        let* times = array_size (return n) (int_range 1 50) in
        let* edges =
          list_size (int_range 0 5)
            (let* i = int_range 0 (n - 2) in
             let* j = int_range (i + 1) (n - 1) in
             return (i, j))
        in
        return (asyncs, times, List.sort_uniq compare edges)))

let arbitrary_graph =
  QCheck.make graph_gen ~print:(fun (asyncs, times, edges) ->
      Fmt.str "asyncs=%a times=%a edges=%a"
        Fmt.(Dump.array bool)
        asyncs
        Fmt.(Dump.array int)
        times
        Fmt.(Dump.list (Dump.pair int int))
        edges)

let dp_matches_oracle =
  QCheck.Test.make ~name:"DP optimum equals brute-force optimum (Theorem 2)"
    ~count:300 arbitrary_graph (fun (asyncs, times, edges) ->
      let g = mk_graph ~asyncs ~times ~edges in
      let dp = Repair.Dp_place.solve g in
      match Repair.Brute.solve g with
      | None -> false
      | Some (best, _witness) ->
          Repair.Dp_place.resolves_all g dp.finishes
          && Repair.Dp_place.eval_placement g dp.finishes = dp.cost
          && dp.cost = best)

let dp_resolves_under_validity =
  QCheck.Test.make
    ~name:"DP output is valid and resolving under random validity" ~count:200
    QCheck.(pair arbitrary_graph (int_range 0 1000))
    (fun ((asyncs, times, edges), vseed) ->
      let g = mk_graph ~asyncs ~times ~edges in
      let rng = Tdrutil.Prng.create ~seed:vseed in
      (* a random monotone validity: each (i,j) valid with prob 3/4;
         memoized for determinism within the run *)
      let memo = Hashtbl.create 16 in
      let valid ~i ~j =
        match Hashtbl.find_opt memo (i, j) with
        | Some b -> b
        | None ->
            let b = Tdrutil.Prng.int rng 4 < 3 in
            Hashtbl.add memo (i, j) b;
            b
      in
      match Repair.Dp_place.solve ~valid g with
      | exception Repair.Dp_place.Unsatisfiable _ -> true
      | out ->
          Repair.Dp_place.resolves_all g out.finishes
          && List.for_all (fun (s, e) -> valid ~i:s ~j:e) out.finishes)

let () =
  Alcotest.run "dp_place"
    [
      ( "figure3",
        [
          Alcotest.test_case "Figure 4 placement costs" `Quick
            test_figure4_placement_costs;
          Alcotest.test_case "DP optimum (beats Figure 4)" `Quick
            test_figure3_dp_optimum;
        ] );
      ( "small",
        [
          Alcotest.test_case "no edges" `Quick test_no_edges;
          Alcotest.test_case "single edge" `Quick test_single_edge;
          Alcotest.test_case "step sink" `Quick test_step_sink;
          Alcotest.test_case "unsatisfiable" `Quick test_unsatisfiable;
          Alcotest.test_case "validity restricts" `Quick
            test_validity_restricts;
          Alcotest.test_case "eval rejects overlapping intervals" `Quick
            test_eval_overlap_rejected;
        ] );
      ( "oracle",
        [
          QCheck_alcotest.to_alcotest dp_matches_oracle;
          QCheck_alcotest.to_alcotest dp_resolves_under_validity;
        ] );
    ]
