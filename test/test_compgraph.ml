(* Tests for the computation graph and the greedy scheduling simulator
   (the substrate behind Figure 16). *)

let run src = Rt.Interp.run (Mhj.Front.compile src)

let graph_of src = Compgraph.Graph.of_sdpst (run src).tree

let test_graph_shape () =
  let g = graph_of "def main() { print(1); async { print(2); } print(3); }" in
  (* source + 3 steps + root join = 5 nodes *)
  Alcotest.(check int) "nodes" 5 (Compgraph.Graph.n_nodes g);
  Alcotest.(check bool) "edges topological" true
    (let ok = ref true in
     for i = 0 to Compgraph.Graph.n_nodes g - 1 do
       List.iter (fun j -> if j <= i then ok := false) (Compgraph.Graph.succs g i)
     done;
     !ok)

let test_metrics_match_sdpst () =
  List.iter
    (fun src ->
      let res = run src in
      let g = Compgraph.Graph.of_sdpst res.tree in
      Alcotest.(check int) "work" res.work (Compgraph.Metrics.work g);
      Alcotest.(check int) "span = CPL"
        (Sdpst.Analysis.critical_path_length res.tree)
        (Compgraph.Metrics.span g))
    [
      "def main() { work(10); }";
      "def main() { async { work(5); } work(9); }";
      "def main() { finish { async { work(5); } async { work(7); } } work(2); }";
      "def main() { for (i = 0 to 4) { async { work(10); } } }";
      {|
def f(n: int) {
  if (n > 0) {
    finish { async { f(n - 1); } async { f(n - 1); } }
    work(3);
  }
}
def main() { f(4); }
|};
    ]

let metrics_match_on_random =
  QCheck.Test.make ~name:"graph span equals S-DPST CPL on random programs"
    ~count:40
    QCheck.(int_range 0 100000)
    (fun seed ->
      let src = Benchsuite.Progen.generate ~seed () in
      let res = run src in
      let g = Compgraph.Graph.of_sdpst res.tree in
      Compgraph.Metrics.work g = res.work
      && Compgraph.Metrics.span g
         = Sdpst.Analysis.critical_path_length res.tree)

let test_schedule_extremes () =
  let res = run "def main() { for (i = 0 to 9) { async { work(10); } } }" in
  let g = Compgraph.Graph.of_sdpst res.tree in
  let t1 = Compgraph.Sched.makespan ~procs:1 g in
  let tinf = Compgraph.Sched.makespan ~procs:10_000 g in
  Alcotest.(check int) "T_1 = work" (Compgraph.Metrics.work g) t1;
  Alcotest.(check int) "T_inf = span" (Compgraph.Metrics.span g) tinf

let brent_bound =
  QCheck.Test.make
    ~name:"greedy schedule satisfies Brent's bound and monotonicity"
    ~count:30
    QCheck.(pair (int_range 0 100000) (int_range 1 16))
    (fun (seed, procs) ->
      let src = Benchsuite.Progen.generate ~seed () in
      let res = run src in
      let g = Compgraph.Graph.of_sdpst res.tree in
      let work = Compgraph.Metrics.work g in
      let span = Compgraph.Metrics.span g in
      let tp = Compgraph.Sched.makespan ~procs g in
      let tp2 = Compgraph.Sched.makespan ~procs:(2 * procs) g in
      tp >= span
      && tp >= (work + procs - 1) / procs
      && tp <= (work / procs) + span
      && tp2 <= tp)

let test_sched_stats () =
  let res =
    run "def main() { finish { async { work(10); } async { work(10); } } }"
  in
  let g = Compgraph.Graph.of_sdpst res.tree in
  let s = Compgraph.Sched.simulate ~procs:2 g in
  Alcotest.(check int) "busy = work" (Compgraph.Metrics.work g) s.busy;
  Alcotest.(check bool) "ready queue observed" true (s.max_ready >= 1);
  Alcotest.check_raises "procs must be positive"
    (Invalid_argument "Sched.simulate: procs must be positive") (fun () ->
      ignore (Compgraph.Sched.simulate ~procs:0 g))

(* Two predecessors (B, C) complete at the same instant; their successors
   (D, E) must both be in the ready queue before anyone is dispatched.
   With the one-event-at-a-time bug, only one successor was visible at
   dispatch time, so [max_ready] never reached 2. *)
let test_sched_simultaneous_drain () =
  let g = Compgraph.Graph.create () in
  let a = Compgraph.Graph.add_node g 1 in
  let b = Compgraph.Graph.add_node g 2 in
  let c = Compgraph.Graph.add_node g 2 in
  let d = Compgraph.Graph.add_node g 1 in
  let e = Compgraph.Graph.add_node g 1 in
  Compgraph.Graph.add_edge g a b;
  Compgraph.Graph.add_edge g a c;
  Compgraph.Graph.add_edge g b d;
  Compgraph.Graph.add_edge g c e;
  let s = Compgraph.Sched.simulate ~procs:2 g in
  Alcotest.(check int) "makespan" 4 s.makespan;
  Alcotest.(check int) "busy" 7 s.busy;
  Alcotest.(check int) "both successors ready together" 2 s.max_ready

(* Diamond variant: both join predecessors finish simultaneously; the
   join must release exactly once and the schedule stays deterministic. *)
let test_sched_diamond_join () =
  let g = Compgraph.Graph.create () in
  let a = Compgraph.Graph.add_node g 1 in
  let b = Compgraph.Graph.add_node g 3 in
  let c = Compgraph.Graph.add_node g 3 in
  let d = Compgraph.Graph.add_node g 2 in
  Compgraph.Graph.add_edge g a b;
  Compgraph.Graph.add_edge g a c;
  Compgraph.Graph.add_edge g b d;
  Compgraph.Graph.add_edge g c d;
  let s = Compgraph.Sched.simulate ~procs:2 g in
  Alcotest.(check int) "makespan" 6 s.makespan;
  Alcotest.(check int) "busy = work" (Compgraph.Metrics.work g) s.busy

let test_pruned_tree_graph () =
  let res =
    run "def main() { async { work(100); } finish { async { work(40); } } }"
  in
  let span_before = Sdpst.Analysis.critical_path_length res.tree in
  ignore (Sdpst.Analysis.prune res.tree ~keep:(fun _ -> false));
  let g = Compgraph.Graph.of_sdpst res.tree in
  Alcotest.(check int) "span preserved through pruning" span_before
    (Compgraph.Metrics.span g)

(* ---------------- work-stealing simulation (Steal) ---------------- *)

let test_steal_single_proc_is_serial () =
  let res = run "def main() { for (i = 0 to 9) { async { work(10); } } }" in
  let g = Compgraph.Graph.of_sdpst res.tree in
  let s = Compgraph.Steal.simulate ~procs:1 g in
  Alcotest.(check int) "T_1 = work" (Compgraph.Metrics.work g) s.makespan;
  Alcotest.(check int) "no steals on one processor" 0 s.steals

let test_steal_policies_complete () =
  let res =
    run
      {|
def f(n: int) {
  if (n > 0) {
    finish { async { f(n - 1); } async { f(n - 1); } }
    work(3);
  }
}
def main() { f(5); }
|}
  in
  let g = Compgraph.Graph.of_sdpst res.tree in
  let span = Compgraph.Metrics.span g in
  let work = Compgraph.Metrics.work g in
  List.iter
    (fun policy ->
      let s = Compgraph.Steal.simulate ~procs:4 ~policy g in
      if s.makespan < span then Alcotest.fail "below span";
      if s.makespan < (work + 3) / 4 then Alcotest.fail "below work/p";
      (* stealing costs overhead, but a greedy-ish schedule should stay
         within work/p + c*span for a small constant *)
      if s.makespan > (work / 4) + (4 * span) then
        Alcotest.failf "makespan %d too far above bound" s.makespan)
    [ Compgraph.Steal.Work_first; Compgraph.Steal.Help_first ]

let test_steal_parallel_graph_steals () =
  let res = run "def main() { for (i = 0 to 19) { async { work(50); } } }" in
  let g = Compgraph.Graph.of_sdpst res.tree in
  let s = Compgraph.Steal.simulate ~procs:4 g in
  Alcotest.(check bool) "steals happen" true (s.steals > 0);
  (* 20 x 50 work over 4 procs: makespan close to 250 + overheads *)
  Alcotest.(check bool)
    (Fmt.str "nearly balanced (makespan %d)" s.makespan)
    true
    (s.makespan < 2 * ((Compgraph.Metrics.work g / 4) + Compgraph.Metrics.span g))

let steal_deterministic =
  QCheck.Test.make ~name:"steal simulation is deterministic" ~count:20
    QCheck.(int_range 0 100000)
    (fun seed ->
      let src = Benchsuite.Progen.generate ~seed () in
      let res = run src in
      let g = Compgraph.Graph.of_sdpst res.tree in
      Compgraph.Steal.makespan ~procs:3 ~seed:7 g
      = Compgraph.Steal.makespan ~procs:3 ~seed:7 g)

let steal_respects_span =
  QCheck.Test.make ~name:"steal makespan >= span, >= work/p" ~count:25
    QCheck.(pair (int_range 0 100000) (int_range 1 8))
    (fun (seed, procs) ->
      let src = Benchsuite.Progen.generate ~seed () in
      let res = run src in
      let g = Compgraph.Graph.of_sdpst res.tree in
      let m = Compgraph.Steal.makespan ~procs g in
      m >= Compgraph.Metrics.span g
      && m >= Compgraph.Metrics.work g / procs)

let () =
  Alcotest.run "compgraph"
    [
      ( "graph",
        [
          Alcotest.test_case "shape" `Quick test_graph_shape;
          Alcotest.test_case "metrics match S-DPST" `Quick
            test_metrics_match_sdpst;
          QCheck_alcotest.to_alcotest metrics_match_on_random;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "extremes" `Quick test_schedule_extremes;
          QCheck_alcotest.to_alcotest brent_bound;
          Alcotest.test_case "stats" `Quick test_sched_stats;
          Alcotest.test_case "simultaneous completions drain" `Quick
            test_sched_simultaneous_drain;
          Alcotest.test_case "diamond join" `Quick test_sched_diamond_join;
          Alcotest.test_case "pruned tree" `Quick test_pruned_tree_graph;
        ] );
      ( "work-stealing",
        [
          Alcotest.test_case "single proc serial" `Quick
            test_steal_single_proc_is_serial;
          Alcotest.test_case "policies complete" `Quick
            test_steal_policies_complete;
          Alcotest.test_case "steals happen" `Quick
            test_steal_parallel_graph_steals;
          QCheck_alcotest.to_alcotest steal_deterministic;
          QCheck_alcotest.to_alcotest steal_respects_span;
        ] );
    ]
