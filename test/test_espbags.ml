(* Tests for the ESP-bags race detectors: the bag transitions, the SRW vs
   MRW difference (paper §4.1, Figure 7), detection soundness on
   synchronized programs, and trace-file round-trips. *)

let detect mode src =
  Espbags.Detector.detect mode (Mhj.Front.compile src)

let race_count mode src = Espbags.Detector.race_count (fst (detect mode src))

(* ------------------------------------------------------------------ *)
(* Bags unit tests                                                     *)
(* ------------------------------------------------------------------ *)

let test_bags_basic () =
  let b = Espbags.Bags.create () in
  Espbags.Bags.task_begin b ~task:0;
  Espbags.Bags.finish_begin b ~finish:0;
  (* main spawns task 1 which completes: it lands in the root P-bag *)
  Espbags.Bags.task_begin b ~task:1;
  Alcotest.(check int) "current task" 1 (Espbags.Bags.current_task b);
  Alcotest.(check bool) "running task is in its S-bag" false (Espbags.Bags.in_pbag b 1);
  Espbags.Bags.task_end b ~task:1;
  Alcotest.(check bool) "completed async is parallel" true (Espbags.Bags.in_pbag b 1);
  (* the root finish ends: task 1 is serialized again *)
  Espbags.Bags.finish_end b ~finish:0;
  Alcotest.(check bool) "after finish it is serial" false (Espbags.Bags.in_pbag b 1);
  Espbags.Bags.task_end b ~task:0

let test_bags_nested_finish () =
  let b = Espbags.Bags.create () in
  Espbags.Bags.task_begin b ~task:0;
  Espbags.Bags.finish_begin b ~finish:0;
  Espbags.Bags.finish_begin b ~finish:10;
  Espbags.Bags.task_begin b ~task:1;
  Espbags.Bags.task_end b ~task:1;
  Alcotest.(check bool) "parallel inside inner finish" true (Espbags.Bags.in_pbag b 1);
  Espbags.Bags.finish_end b ~finish:10;
  Alcotest.(check bool) "inner finish serializes" false (Espbags.Bags.in_pbag b 1);
  (* another async after the inner finish *)
  Espbags.Bags.task_begin b ~task:2;
  Espbags.Bags.task_end b ~task:2;
  Alcotest.(check bool) "still parallel under root" true (Espbags.Bags.in_pbag b 2);
  Alcotest.(check bool) "task 1 remains serial" false (Espbags.Bags.in_pbag b 1);
  Espbags.Bags.finish_end b ~finish:0;
  Espbags.Bags.task_end b ~task:0

let test_bags_stack_mismatch () =
  let b = Espbags.Bags.create () in
  Espbags.Bags.task_begin b ~task:0;
  Alcotest.check_raises "wrong task end"
    (Invalid_argument "Bags.task_end: task stack mismatch") (fun () ->
      Espbags.Bags.task_end b ~task:5)

(* ------------------------------------------------------------------ *)
(* Detection                                                           *)
(* ------------------------------------------------------------------ *)

let racy_src =
  "var x: int = 0;\ndef main() { async { x = 1; } print(x); }"

let test_detects_simple_race () =
  Alcotest.(check int) "one race" 1 (race_count Espbags.Detector.Mrw racy_src);
  let det, _ = detect Espbags.Detector.Mrw racy_src in
  match Espbags.Detector.races det with
  | [ r ] ->
      Alcotest.(check string) "kind is W->R" "W->R"
        (Fmt.str "%a" Espbags.Race.pp_kind r.kind);
      Alcotest.(check bool)
        "endpoints may happen in parallel" true
        (Sdpst.Lca.may_happen_in_parallel r.src r.sink)
  | _ -> Alcotest.fail "expected exactly one race"

let test_no_race_when_synchronized () =
  let cases =
    [
      "var x: int = 0;\ndef main() { finish { async { x = 1; } } print(x); }";
      "var x: int = 0;\ndef main() { x = 1; async { print(x); } }";
      (* read-read is never a race *)
      "var x: int = 5;\ndef main() { async { print(x); } print(x); }";
      (* cas is exempt *)
      "def main() { val a: int[] = new int[1]; async { val ok: bool = \
       cas(a, 0, 0, 1); } val ok2: bool = cas(a, 0, 1, 2); }";
    ]
  in
  List.iter
    (fun src ->
      Alcotest.(check int) src 0 (race_count Espbags.Detector.Mrw src))
    cases

let test_race_kinds () =
  let ww =
    "var x: int = 0;\ndef main() { async { x = 1; } x = 2; }"
  in
  let rw =
    "var x: int = 0;\ndef main() { async { print(x); } x = 2; }"
  in
  let kind_of src =
    let det, _ = detect Espbags.Detector.Mrw src in
    match Espbags.Detector.races det with
    | [ r ] -> Fmt.str "%a" Espbags.Race.pp_kind r.kind
    | rs -> Alcotest.failf "expected 1 race, got %d" (List.length rs)
  in
  Alcotest.(check string) "write-write" "W->W" (kind_of ww);
  Alcotest.(check string) "read-write" "R->W" (kind_of rw)

(* Paper Figure 7: two parallel readers then a writer.  SRW tracks a single
   reader so it reports one R->W race; MRW reports both. *)
let figure7_src =
  {|
var x: int = 0;
def main() {
  async { print(x); }
  async { print(x); }
  async { x = 1; }
}
|}

let test_figure7_srw_vs_mrw () =
  Alcotest.(check int) "SRW reports one" 1
    (race_count Espbags.Detector.Srw figure7_src);
  Alcotest.(check int) "MRW reports both" 2
    (race_count Espbags.Detector.Mrw figure7_src)

(* Figure 5 of the paper: two races, A2 -> A4 and A3 -> A4. *)
let figure5_src =
  {|
var x: int = 0;
var y: int = 0;
def main() {
  if (1 < 2) {
    async { work(5); }
    async { x = 1; }
  }
  async { y = 2; }
  async { print(x + y); }
}
|}

let test_figure5_races () =
  let det, _ = detect Espbags.Detector.Mrw figure5_src in
  let races = Espbags.Detector.races det in
  Alcotest.(check int) "two races" 2 (List.length races);
  let addrs =
    List.sort compare
      (List.map (fun (r : Espbags.Race.t) -> Fmt.str "%a" Rt.Addr.pp r.addr) races)
  in
  Alcotest.(check (list string)) "on x and y" [ "x"; "y" ] addrs

let test_mrw_superset_of_srw () =
  List.iter
    (fun seed ->
      let src = Benchsuite.Progen.generate ~seed () in
      let prog = Mhj.Front.compile src in
      let srw, _ = Espbags.Detector.detect Espbags.Detector.Srw prog in
      let mrw, _ = Espbags.Detector.detect Espbags.Detector.Mrw prog in
      let s = Espbags.Detector.race_count srw in
      let m = Espbags.Detector.race_count mrw in
      if m < s then
        Alcotest.failf "seed %d: MRW (%d) reported fewer races than SRW (%d)"
          seed m s;
      (* and they agree on whether the program is racy at all *)
      if (s = 0) <> (m = 0) then
        Alcotest.failf "seed %d: SRW/MRW disagree on race freedom" seed)
    [ 11; 22; 33; 44; 55; 66 ]

let test_sources_precede_sinks () =
  let det, _ =
    detect Espbags.Detector.Mrw
      (Benchsuite.Progen.generate ~seed:4242 ())
  in
  List.iter
    (fun (r : Espbags.Race.t) ->
      if r.src.Sdpst.Node.id >= r.sink.Sdpst.Node.id then
        Alcotest.fail "race source must precede sink in DFS order")
    (Espbags.Detector.races det)

(* ------------------------------------------------------------------ *)
(* MHP oracle: MRW completeness and soundness                          *)
(* ------------------------------------------------------------------ *)

(* Record every monitored access with a passthrough monitor (also
   exercising Monitor.both), then compute the exact race set from the
   paper's Theorem 1 may-happen-in-parallel predicate and compare it with
   what MRW reported.  This is the strongest detector test we have: MRW
   must report a (src step, sink step, addr) triple iff two conflicting
   accesses of that address from those steps may run in parallel. *)
let mrw_equals_mhp_oracle seed =
  let src = Benchsuite.Progen.generate ~seed () in
  let prog = Mhj.Front.compile src in
  let accesses = ref [] in
  let recorder =
    {
      Rt.Monitor.nop with
      Rt.Monitor.on_access =
        (fun ~step ~bid:_ ~idx:_ addr kind ->
          accesses := (step, addr, kind) :: !accesses);
    }
  in
  let det = Espbags.Detector.make Espbags.Detector.Mrw in
  let _res =
    Rt.Interp.run ~monitor:(Rt.Monitor.both recorder det.monitor) prog
  in
  let key (a : Sdpst.Node.t) (b : Sdpst.Node.t) (addr : Rt.Addr.t) =
    (a.Sdpst.Node.id, b.Sdpst.Node.id, Fmt.str "%a" Rt.Addr.pp addr)
  in
  let module S = Set.Make (struct
    type t = int * int * string

    let compare = compare
  end) in
  let reported =
    List.fold_left
      (fun acc (r : Espbags.Race.t) -> S.add (key r.src r.sink r.addr) acc)
      S.empty (Espbags.Detector.races det)
  in
  let accs = Array.of_list (List.rev !accesses) in
  let oracle = ref S.empty in
  let n = Array.length accs in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let s1, a1, k1 = accs.(i) and s2, a2, k2 = accs.(j) in
      if
        a1 = a2
        && (k1 = Rt.Monitor.Write || k2 = Rt.Monitor.Write)
        && s1.Sdpst.Node.id <> s2.Sdpst.Node.id
        && Sdpst.Lca.may_happen_in_parallel s1 s2
      then begin
        let addr = Rt.Addr.Intern.of_id det.intern a1 in
        oracle :=
          S.add
            (if s1.Sdpst.Node.id < s2.Sdpst.Node.id then key s1 s2 addr
             else key s2 s1 addr)
            !oracle
      end
    done
  done;
  if not (S.equal reported !oracle) then begin
    let d1 = S.diff !oracle reported and d2 = S.diff reported !oracle in
    Alcotest.failf
      "seed %d: oracle/MRW mismatch (missed %d, spurious %d); e.g. %s" seed
      (S.cardinal d1) (S.cardinal d2)
      (match (S.choose_opt d1, S.choose_opt d2) with
      | Some (a, b, v), _ | None, Some (a, b, v) ->
          Fmt.str "(%d, %d, %s)" a b v
      | None, None -> "-")
  end

(* The quadratic oracle needs small traces, so use a compact generator
   configuration. *)
let oracle_cfg =
  {
    Benchsuite.Progen.default with
    Benchsuite.Progen.max_stmts = 3;
    max_depth = 3;
    arr_len = 4;
  }

let mrw_matches_oracle_prop =
  QCheck.Test.make ~name:"MRW race set equals the Theorem-1 MHP oracle"
    ~count:30
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let src = Benchsuite.Progen.generate ~cfg:oracle_cfg ~seed () in
      (* guard against overly large traces; the property runs on the rest *)
      let prog = Mhj.Front.compile src in
      let count = ref 0 in
      let counter =
        {
          Rt.Monitor.nop with
          Rt.Monitor.on_access = (fun ~step:_ ~bid:_ ~idx:_ _ _ -> incr count);
        }
      in
      let _ = Rt.Interp.run ~monitor:counter prog in
      if !count > 800 then true
      else begin
        mrw_equals_mhp_oracle seed;
        true
      end)

(* SRW soundness: every SRW report is a true race (in the oracle set),
   and SRW is silent iff the program is race-free. *)
let srw_sound_prop =
  QCheck.Test.make ~name:"SRW reports are a sound subset of the oracle"
    ~count:30
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let src = Benchsuite.Progen.generate ~cfg:oracle_cfg ~seed () in
      let prog = Mhj.Front.compile src in
      let srw, res = Espbags.Detector.detect Espbags.Detector.Srw prog in
      ignore res;
      List.for_all
        (fun (r : Espbags.Race.t) ->
          Sdpst.Lca.may_happen_in_parallel r.src r.sink)
        (Espbags.Detector.races srw))

(* ------------------------------------------------------------------ *)
(* Trace files                                                         *)
(* ------------------------------------------------------------------ *)

let test_trace_roundtrip () =
  let prog = Mhj.Front.compile figure5_src in
  let det, res = Espbags.Detector.detect Espbags.Detector.Mrw prog in
  let races = Espbags.Detector.races det in
  let text = Espbags.Trace.to_string ~mode:Espbags.Detector.Mrw races in
  (* a second (deterministic) run resolves the node ids *)
  let res2 = Rt.Interp.run prog in
  ignore res;
  let mode, races2 = Espbags.Trace.of_string res2.tree text in
  Alcotest.(check bool) "mode" true (mode = Espbags.Detector.Mrw);
  Alcotest.(check int) "count" (List.length races) (List.length races2);
  List.iter2
    (fun (a : Espbags.Race.t) (b : Espbags.Race.t) ->
      Alcotest.(check int) "src" a.src.Sdpst.Node.id b.src.Sdpst.Node.id;
      Alcotest.(check int) "sink" a.sink.Sdpst.Node.id b.sink.Sdpst.Node.id;
      Alcotest.(check bool) "addr" true (Rt.Addr.equal a.addr b.addr);
      Alcotest.(check bool) "kind" true (a.kind = b.kind))
    races races2

let test_trace_errors () =
  let prog = Mhj.Front.compile "def main() { print(1); }" in
  let res = Rt.Interp.run prog in
  let bad s =
    match Espbags.Trace.of_string res.tree s with
    | exception Espbags.Trace.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "bad magic" true (bad "nope\n");
  Alcotest.(check bool) "bad line" true
    (bad "tdrace-trace-v1\nwhatever\n");
  Alcotest.(check bool) "unknown node" true
    (bad "tdrace-trace-v1\nrace WR g:x 998 999\n")

let test_dedupe_and_static_count () =
  let det, _ =
    detect Espbags.Detector.Mrw
      {|
var x: int = 0;
def main() {
  async { for (i = 0 to 3) { x = x + 1; } }
  print(x);
}
|}
  in
  let races = Espbags.Detector.races det in
  let deduped = Espbags.Race.dedupe_by_steps races in
  Alcotest.(check bool) "dedupe shrinks or keeps" true
    (List.length deduped <= List.length races);
  Alcotest.(check bool) "static count positive" true
    (Espbags.Race.count_static races > 0)

let () =
  Alcotest.run "espbags"
    [
      ( "bags",
        [
          Alcotest.test_case "basic transitions" `Quick test_bags_basic;
          Alcotest.test_case "nested finish" `Quick test_bags_nested_finish;
          Alcotest.test_case "stack mismatch" `Quick test_bags_stack_mismatch;
        ] );
      ( "detection",
        [
          Alcotest.test_case "simple race" `Quick test_detects_simple_race;
          Alcotest.test_case "synchronized programs are clean" `Quick
            test_no_race_when_synchronized;
          Alcotest.test_case "race kinds" `Quick test_race_kinds;
          Alcotest.test_case "Figure 7 SRW vs MRW" `Quick
            test_figure7_srw_vs_mrw;
          Alcotest.test_case "Figure 5 races" `Quick test_figure5_races;
          Alcotest.test_case "MRW superset of SRW" `Quick
            test_mrw_superset_of_srw;
          Alcotest.test_case "source precedes sink" `Quick
            test_sources_precede_sinks;
          QCheck_alcotest.to_alcotest mrw_matches_oracle_prop;
          QCheck_alcotest.to_alcotest srw_sound_prop;
        ] );
      ( "trace",
        [
          Alcotest.test_case "round-trip" `Quick test_trace_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_trace_errors;
          Alcotest.test_case "dedupe/static counts" `Quick
            test_dedupe_and_static_count;
        ] );
    ]
