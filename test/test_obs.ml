(* Tests for lib/obs: span tracing (nesting, ordering, disabled fast
   path, exception safety), the metrics registry, and the tiny JSON
   emitter/parser behind the --trace/--metrics files.

   Trace state is global single-domain mutable state, so every trace
   test runs under [with_tracing], which resets the buffer, enables
   tracing and guarantees disable+reset on exit — tests stay independent
   even when one of them fails mid-span. *)

let with_tracing f =
  Obs.Trace.reset ();
  Obs.Trace.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.disable ();
      Obs.Trace.reset ())
    f

(* --- spans --- *)

let test_span_nesting () =
  with_tracing (fun () ->
      let r =
        Obs.Trace.with_span "outer" (fun () ->
            Obs.Trace.with_span "inner-a" (fun () -> ());
            Obs.Trace.with_span "inner-b" (fun () -> ());
            42)
      in
      Alcotest.(check int) "with_span returns f's result" 42 r;
      let evs = Obs.Trace.events () in
      Alcotest.(check (list string))
        "sorted by start: parent first" [ "outer"; "inner-a"; "inner-b" ]
        (List.map (fun (e : Obs.Trace.event) -> e.name) evs);
      let depth n =
        (List.find (fun (e : Obs.Trace.event) -> e.name = n) evs)
          .Obs.Trace.depth
      in
      Alcotest.(check int) "outer depth" 0 (depth "outer");
      Alcotest.(check int) "inner-a depth" 1 (depth "inner-a");
      Alcotest.(check int) "inner-b depth" 1 (depth "inner-b");
      (* parent spans [t0, t0+dur] must contain the children *)
      let outer = List.hd evs in
      List.iter
        (fun (e : Obs.Trace.event) ->
          if e.depth = 1 then begin
            Alcotest.(check bool)
              "child starts after parent" true
              (e.ts_ns >= outer.ts_ns);
            Alcotest.(check bool)
              "child ends before parent" true
              (Int64.add e.ts_ns e.dur_ns
              <= Int64.add outer.ts_ns outer.dur_ns)
          end)
        evs)

let test_span_ordering_monotone () =
  with_tracing (fun () ->
      for i = 1 to 5 do
        Obs.Trace.with_span "step" ~args:[ ("i", i) ] (fun () ->
            Obs.Trace.with_span "sub" (fun () -> ()))
      done;
      let evs = Obs.Trace.events () in
      Alcotest.(check int) "5 iterations x 2 spans" 10 (List.length evs);
      let rec monotone = function
        | (a : Obs.Trace.event) :: (b : Obs.Trace.event) :: tl ->
            a.ts_ns <= b.ts_ns && monotone (b :: tl)
        | _ -> true
      in
      Alcotest.(check bool) "timestamps non-decreasing" true (monotone evs);
      let args_of_steps =
        List.filter_map
          (fun (e : Obs.Trace.event) ->
            if e.name = "step" then Some e.args else None)
          evs
      in
      Alcotest.(check (list (list (pair string int))))
        "args carried through in order"
        [ [ ("i", 1) ]; [ ("i", 2) ]; [ ("i", 3) ]; [ ("i", 4) ]; [ ("i", 5) ] ]
        args_of_steps)

let test_span_disabled_noop () =
  Obs.Trace.reset ();
  Alcotest.(check bool) "disabled by default" false (Obs.Trace.enabled ());
  let r = Obs.Trace.with_span "ghost" (fun () -> "ran") in
  Alcotest.(check string) "f still runs" "ran" r;
  Alcotest.(check int) "nothing recorded" 0
    (List.length (Obs.Trace.events ()))

exception Boom

let test_span_exception_safety () =
  with_tracing (fun () ->
      (try
         Obs.Trace.with_span "outer" (fun () ->
             Obs.Trace.with_span "thrower" (fun () -> raise Boom))
       with Boom -> ());
      let evs = Obs.Trace.events () in
      Alcotest.(check (list string))
        "both spans recorded despite the raise" [ "outer"; "thrower" ]
        (List.map (fun (e : Obs.Trace.event) -> e.name) evs);
      (* depth must have unwound: a fresh span is top-level again *)
      Obs.Trace.with_span "after" (fun () -> ());
      let after =
        List.find
          (fun (e : Obs.Trace.event) -> e.name = "after")
          (Obs.Trace.events ())
      in
      Alcotest.(check int) "depth restored after raise" 0 after.depth)

let test_trace_json_schema () =
  with_tracing (fun () ->
      Obs.Trace.with_span "a" ~args:[ ("k", 3) ] (fun () ->
          Obs.Trace.with_span "b" (fun () -> ()));
      let j = Obs.Trace.to_json () in
      (match Obs.Json.member "displayTimeUnit" j with
      | Some (Obs.Json.Str "ms") -> ()
      | _ -> Alcotest.fail "displayTimeUnit missing");
      match Obs.Json.member "traceEvents" j with
      | Some (Obs.Json.List evs) ->
          Alcotest.(check int) "two events" 2 (List.length evs);
          List.iter
            (fun ev ->
              List.iter
                (fun k ->
                  if Obs.Json.member k ev = None then
                    Alcotest.fail ("event missing key " ^ k))
                [ "name"; "cat"; "ph"; "ts"; "dur"; "pid"; "tid"; "args" ];
              match Obs.Json.member "ph" ev with
              | Some (Obs.Json.Str "X") -> ()
              | _ -> Alcotest.fail "phase must be X")
            evs
      | _ -> Alcotest.fail "traceEvents missing")

(* --- metrics registry --- *)

let test_metrics_counters () =
  let m = Obs.Metrics.create () in
  Alcotest.(check int) "absent key reads 0" 0 (Obs.Metrics.get m "nope");
  Obs.Metrics.incr m "a";
  Obs.Metrics.add m "a" 4;
  Obs.Metrics.set m "b" 7;
  Obs.Metrics.set m "b" 3;
  (* gauge: latest wins *)
  Alcotest.(check int) "incr+add accumulate" 5 (Obs.Metrics.get m "a");
  Alcotest.(check int) "set overwrites" 3 (Obs.Metrics.get m "b");
  Obs.Metrics.add_all m [ ("a", 10); ("c", 2) ];
  Alcotest.(check (list (pair string int)))
    "snapshot sorted by key"
    [ ("a", 15); ("b", 3); ("c", 2) ]
    (Obs.Metrics.snapshot m);
  Obs.Metrics.reset m;
  Alcotest.(check (list (pair string int)))
    "reset empties" [] (Obs.Metrics.snapshot m)

let test_metrics_declare () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.declare m "x.ran";
  Obs.Metrics.declare m "x.skipped";
  Obs.Metrics.incr m "x.ran";
  (* declaring an already-written key must not zero it *)
  Obs.Metrics.declare m "x.ran";
  Alcotest.(check (list (pair string int)))
    "declared keys present at 0"
    [ ("x.ran", 1); ("x.skipped", 0) ]
    (Obs.Metrics.snapshot m)

(* --- JSON --- *)

let test_json_sorted_round_trip () =
  let j =
    Obs.Json.Obj
      [
        ("zeta", Obs.Json.Int 1);
        ("alpha", Obs.Json.List [ Obs.Json.Bool true; Obs.Json.Null ]);
        ("mid", Obs.Json.Obj [ ("b", Obs.Json.Float 1.5); ("a", Obs.Json.Str "s\"x") ]);
      ]
  in
  let s = Obs.Json.to_string j in
  Alcotest.(check string)
    "keys sorted, canonical spacing"
    "{\"alpha\": [true, null], \"mid\": {\"a\": \"s\\\"x\", \"b\": 1.5}, \
     \"zeta\": 1}"
    s;
  (* the parser preserves input order, so re-parsing the canonical form
     yields already-sorted Obj lists and re-emission is a fixpoint *)
  Alcotest.(check string)
    "emit/parse/emit fixpoint" s
    (Obs.Json.to_string (Obs.Json.of_string s))

let test_json_parse_errors () =
  List.iter
    (fun bad ->
      match Obs.Json.of_string bad with
      | exception Obs.Json.Parse_error _ -> ()
      | _ -> Alcotest.fail ("accepted malformed input: " ^ bad))
    [ ""; "{"; "[1,]"; "{\"a\" 1}"; "tru"; "1 2"; "\"unterminated" ]

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "ordering monotone" `Quick
            test_span_ordering_monotone;
          Alcotest.test_case "disabled no-op" `Quick test_span_disabled_noop;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safety;
          Alcotest.test_case "chrome json schema" `Quick
            test_trace_json_schema;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_metrics_counters;
          Alcotest.test_case "declare" `Quick test_metrics_declare;
        ] );
      ( "json",
        [
          Alcotest.test_case "sorted round trip" `Quick
            test_json_sorted_round_trip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
        ] );
    ]
