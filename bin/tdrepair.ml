(** tdrepair — test-driven repair of data races in Mini-HJ programs.

    Command-line layout mirrors the paper's artifact (Appendix A):
    [detect] instruments and executes a program, writing a race trace;
    [repair] computes and applies finish placements; the remaining
    commands expose the surrounding tooling (run, strip, elide, coverage,
    grading). *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

module Ec = Repair.Exit_code

(* Every pipeline failure exits through the Exit_code contract with a
   located Diag printed on stderr (exit_code.mli documents the codes). *)
let or_die f =
  try f () with
  | e -> (
      let diag =
        match e with
        | Repair.Driver.Unrepairable m ->
            Some (Repair.Diag.make ~stage:Repair.Diag.Place m)
        | Repair.Faultinject.Injected (fault, msg) ->
            Some
              (Repair.Diag.make
                 ~stage:(Repair.Faultinject.stage_of fault)
                 msg)
        | e -> Repair.Diag.of_exn e
      in
      match diag with
      | Some d ->
          Fmt.epr "%a@." Repair.Diag.pp d;
          exit (Ec.of_diag d)
      | None -> raise e)

let compile path = Mhj.Front.compile (read_file path)

(* --set NAME=INT test-input overrides *)
let apply_sets prog sets =
  List.fold_left
    (fun p spec ->
      match String.index_opt spec '=' with
      | Some i -> (
          let name = String.sub spec 0 i in
          let v = String.sub spec (i + 1) (String.length spec - i - 1) in
          match int_of_string_opt v with
          | Some v -> (
              try Mhj.Transform.set_global_int p name v
              with Invalid_argument m ->
                Fmt.epr "error: --set %s: %s@." spec m;
                exit Ec.input_error)
          | None ->
              Fmt.epr "error: --set %s: %S is not an integer@." spec v;
              exit Ec.input_error)
      | None ->
          Fmt.epr "error: --set expects NAME=INT, got %S@." spec;
          exit Ec.input_error)
    prog sets

(* ---------------------------- arguments ---------------------------- *)

let file_arg =
  Arg.(
    required
    & pos 0 (some non_dir_file) None
    & info [] ~docv:"FILE" ~doc:"Mini-HJ source file.")

let mode_arg =
  let mode_conv =
    Arg.enum [ ("mrw", Espbags.Detector.Mrw); ("srw", Espbags.Detector.Srw) ]
  in
  Arg.(
    value & opt mode_conv Espbags.Detector.Mrw
    & info [ "mode" ] ~docv:"MODE"
        ~doc:
          "ESP-bags detector flavour: $(b,mrw) (all readers/writers, the \
           paper's default) or $(b,srw) (single reader-writer).")

let backend_arg =
  let backend_conv =
    Arg.enum [ ("espbags", `Espbags); ("vclock", `Vclock); ("auto", `Auto) ]
  in
  Arg.(
    value & opt backend_conv `Espbags
    & info [ "backend" ] ~docv:"B"
        ~doc:
          "Detection backend: $(b,espbags) (the paper's algorithm, the \
           default), $(b,vclock) (vector clocks, report-identical to \
           ESP-bags), or $(b,auto) (pick per workload from its task \
           shape; the choice is printed and recorded in the metrics as \
           $(b,detector.backend)).")

(* [`Auto] resolves here so the pick and its reason are visible on
   stdout; the driver resolves identically (same Vclock.Select.choose)
   for the metrics. *)
let resolve_backend_verbose prog = function
  | (`Espbags | `Vclock) as b -> b
  | `Auto ->
      let pick, reason = Vclock.Select.choose prog in
      Fmt.pr "auto backend: %a (%s)@." Vclock.Select.pp_choice pick reason;
      (pick :> [ `Espbags | `Vclock ])

let strategy_arg =
  let strategy_conv =
    Arg.enum
      [
        ("finish", `Finish);
        ("isolated", `Isolated);
        ("elide", `Elide);
        ("chunk", `Chunk);
        ("tournament", `Tournament);
      ]
  in
  Arg.(
    value & opt strategy_conv `Finish
    & info [ "strategy" ] ~docv:"S"
        ~doc:
          "Repair strategy: $(b,finish) (the paper's interval-DP finish \
           insertion, the default), $(b,isolated) (wrap the racing \
           statements in mutually-exclusive isolated sections), \
           $(b,elide) (demote the offending asyncs to inline sequential \
           execution), $(b,chunk) (split a racy loop into sub-loops with \
           a finish at every chunk seam), or $(b,tournament) (run all \
           four, verify each race-free, and keep the minimum-CPL winner; \
           ties break toward $(b,finish)).  Per-strategy outcomes land \
           in the metrics as $(b,strategy.*).")

(* Per-candidate tournament summary shared by detect (preview) and
   repair. *)
let pp_candidates ppf (outcome : Repair.Strategy.outcome) =
  List.iter
    (fun (c : Repair.Strategy.candidate) ->
      match c.Repair.Strategy.score with
      | Some s when c.verified ->
          Fmt.pf ppf "  %-9s race-free in %d round(s): %a@."
            (Repair.Strategy.kind_name c.kind)
            c.rounds Compgraph.Score.pp s
      | _ ->
          Fmt.pf ppf "  %-9s not applicable: %s@."
            (Repair.Strategy.kind_name c.kind)
            (if c.note = "" then "no race-free candidate" else c.note))
    outcome.Repair.Strategy.candidates

let set_arg =
  Arg.(
    value & opt_all string []
    & info [ "set" ] ~docv:"NAME=INT"
        ~doc:
          "Override an int global's initializer — vary the test input \
           without editing the program.  Repeatable.")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"OUT" ~doc:"Write the result to $(docv).")

let budgets_term =
  let fuel =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget-fuel" ] ~docv:"N"
          ~doc:
            "Interpreter budget: abort any execution after $(docv) cost \
             units (exit code 4).")
  in
  let sdpst =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget-sdpst" ] ~docv:"N"
          ~doc:
            "S-DPST budget: when a detection run's tree exceeds $(docv) \
             nodes, collapse race-free regions before placement.  The \
             repair still converges; the degradation is recorded in the \
             report and by exit code 4.")
  in
  let dp =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget-dp" ] ~docv:"N"
          ~doc:
            "Placement-DP budget in work units (~cube of the dependence \
             graph size).  Affordable groups get the exact DP; exhausted \
             groups degrade to per-edge interval covers (exit code 4).")
  in
  let mk fuel sdpst_nodes dp_work =
    { Repair.Guard.fuel; sdpst_nodes; dp_work }
  in
  Term.(const mk $ fuel $ sdpst $ dp)

let timeout_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "timeout-ms" ] ~docv:"MS"
        ~doc:
          "Wall-clock watchdog for the whole job: abort once $(docv) \
           milliseconds have elapsed (exit code 4).  The same cooperative \
           watchdog guards every job in $(b,tdrepair serve).")

(* ---------------------------- commands ----------------------------- *)

let parse_cmd =
  let run file =
    or_die (fun () ->
        let prog = compile file in
        Fmt.pr "%s" (Mhj.Pretty.program_to_string prog))
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Parse, type-check and re-print a program.")
    Term.(const run $ file_arg)

let run_cmd =
  let run file procs sets par seed pace_ns =
    or_die (fun () ->
        let prog = apply_sets (compile file) sets in
        match par with
        | None ->
            let res = Rt.Interp.run prog in
            print_string res.output;
            let cpl = Sdpst.Analysis.critical_path_length res.tree in
            let g = Compgraph.Graph.of_sdpst res.tree in
            Fmt.pr
              "work (T1) = %d cost units@\n\
               critical path (Tinf) = %d@\n\
               parallelism = %.2f@\n\
               simulated T_%d = %d@\n\
               S-DPST nodes = %d@."
              res.work cpl
              (float_of_int res.work /. float_of_int (max 1 cpl))
              procs
              (Compgraph.Sched.makespan ~procs g)
              res.tree.Sdpst.Node.n_nodes
        | Some n ->
            let n = if n <= 0 then Domain.recommended_domain_count () else n in
            let mode =
              if n = 1 then Par.Engine.Fuzz { seed }
              else Par.Engine.Domains { n; seed }
            in
            let res = Par.Engine.run ~pace_ns ~mode prog in
            print_string res.output;
            (* The scheduler line is mode-tagged: a Fuzz run has a single
               worker, so printing "steals = 0" would be misleading. *)
            let sched_line =
              match res.stats.Par.Engine.sched with
              | Par.Engine.Fuzz_stats { n_inlined; n_pooled; n_yields } ->
                  Fmt.str
                    "tasks spawned = %d (inlined %d, pooled %d, yields %d; \
                     single worker, no steals)"
                    res.stats.Par.Engine.n_tasks n_inlined n_pooled n_yields
              | Par.Engine.Domains_stats { n_steals; n_deque_grows } ->
                  Fmt.str "tasks spawned = %d, steals = %d, deque grows = %d"
                    res.stats.Par.Engine.n_tasks n_steals n_deque_grows
            in
            Fmt.pr
              "parallel run: %d domain(s)%s, seed %d@\n\
               work (T1) = %d cost units@\n\
               %s@\n\
               wall-clock = %.3f s@."
              res.n_domains
              (if n = 1 then " (deterministic fuzz schedule)" else "")
              seed res.work sched_line res.wall_s)
  in
  let procs =
    Arg.(
      value & opt int 12
      & info [ "p"; "procs" ] ~docv:"P"
          ~doc:"Processors for the scheduling simulation.")
  in
  let par =
    Arg.(
      value
      & opt ~vopt:(Some 0) (some int) None
      & info [ "par" ] ~docv:"N"
          ~doc:
            "Execute on the parallel backend with $(docv) OCaml domains \
             instead of depth-first.  $(b,--par=1) is the deterministic \
             schedule-fuzzing mode (replayable from $(b,--seed)); \
             $(b,--par) alone uses the recommended domain count.")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"S"
          ~doc:
            "Schedule seed: with $(b,--par=1) the same seed replays the \
             same schedule exactly; with more domains it drives victim \
             selection (best-effort).")
  in
  let pace =
    Arg.(
      value & opt int 0
      & info [ "pace" ] ~docv:"NS"
          ~doc:
            "Pace parallel execution: each cost unit also costs $(docv) \
             nanoseconds of sleep, so wall-clock time reflects schedule \
             overlap (used by $(b,bench speedup)).")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Execute a program: depth-first with work/critical-path analysis \
          (default), or for real on the parallel backend ($(b,--par)).")
    Term.(const run $ file_arg $ procs $ set_arg $ par $ seed $ pace)

let static_prune_arg =
  Arg.(
    value & flag
    & info [ "static-prune" ]
        ~doc:
          "Run the static MHP pre-pass first and skip instrumenting \
           accesses it proves sequential.  With $(b,--mode mrw) the \
           reported race set is unchanged; detection only gets cheaper.")

(* --shadow-chunk / --spill: detector memory bounds (DESIGN.md §15);
   shared by detect and repair.  Neither changes the reported races. *)
let shadow_chunk_arg =
  let pos_int =
    let parse s =
      match int_of_string_opt s with
      | Some n when n > 0 -> Ok n
      | Some _ -> Error (`Msg "chunk size must be positive")
      | None -> Error (`Msg (Fmt.str "%S is not an integer" s))
    in
    Arg.conv (parse, Fmt.int)
  in
  Arg.(
    value
    & opt (some pos_int) None
    & info [ "shadow-chunk" ] ~docv:"N"
        ~doc:
          "Grow the detector's shadow tables in slab chunks of $(docv) \
           slots (default 8192; rounded up to a power of two).  Reported \
           races are unchanged; smaller chunks track sparse address \
           spaces more tightly.")

let spill_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "spill" ] ~docv:"FILE"
        ~doc:
          "Bound in-memory race records by draining overflow to $(docv) \
           (a loadable race-trace file, removed again if nothing \
           spills).  Reported races are unchanged.")

(* Fail fast on an unwritable spill path (the detector only opens it on
   first overflow, which could be minutes into a run). *)
let check_spill_writable spill =
  Option.iter
    (fun path ->
      try
        let oc = open_out_gen [ Open_wronly; Open_creat ] 0o644 path in
        close_out oc
      with Sys_error m ->
        Fmt.epr "error: --spill %s: %s@." path m;
        exit Ec.input_error)
    spill

(* A spill file that never received records is an empty stub, not a
   loadable trace; drop it. *)
let cleanup_spill spill ~n_spilled =
  match spill with
  | Some path when n_spilled = 0 -> ( try Sys.remove path with Sys_error _ -> ())
  | _ -> ()

let detect_cmd =
  let run file mode backend strategy sets trace dump_tree dump_sdpst
      static_prune shadow_chunk spill timeout_ms =
    or_die (fun () ->
      Rt.Watchdog.with_timeout ~ms:timeout_ms @@ fun () ->
        let prog = apply_sets (compile file) sets in
        let backend = resolve_backend_verbose prog backend in
        check_spill_writable spill;
        let layout = Option.map (fun n -> Tdrutil.Islab.Chunked n) shadow_chunk in
        let spill_cfg = Option.map Espbags.Spill.config spill in
        let keep =
          if static_prune then begin
            let pr = Static.Prune.make prog in
            Fmt.pr
              "static prune: %d of %d statement(s) stay monitored (%d \
               unproven MHP conflict(s))@."
              (Static.Prune.n_kept pr) (Static.Prune.n_stmts pr)
              (Static.Prune.n_conflicts pr);
            Some (Static.Prune.keep_fn pr)
          end
          else None
        in
        let label, races, n_accesses, n_locations, n_skipped, n_spilled, res =
          match backend with
          | `Espbags ->
              let det, res =
                Espbags.Detector.detect ?keep ?layout ?spill:spill_cfg mode
                  prog
              in
              ( "ESP-bags",
                Espbags.Detector.races det,
                det.Espbags.Detector.n_accesses,
                det.Espbags.Detector.n_locations,
                det.Espbags.Detector.n_skipped,
                Espbags.Detector.n_spilled det,
                res )
          | `Vclock ->
              let det, res =
                Vclock.Seq.detect ?keep ?layout ?spill:spill_cfg mode prog
              in
              ( "vector-clock",
                Vclock.Seq.races det,
                det.Vclock.Seq.n_accesses,
                det.Vclock.Seq.n_locations,
                det.Vclock.Seq.n_skipped,
                Vclock.Seq.n_spilled det,
                res )
        in
        cleanup_spill spill ~n_spilled;
        (* Races with both endpoints inside [isolated] sections are
           discharged by mutual exclusion — the detectors run the body
           as a plain scope and cannot see the serialization. *)
        let races, discharged =
          let surviving, discharged = Repair.Isolate.split prog races in
          (surviving, List.length discharged)
        in
        if dump_sdpst then Fmt.pr "%s@." (Sdpst.Serial.to_string res.tree);
        (match dump_tree with
        | Some path ->
            write_file path (Sdpst.Serial.tree_to_string res.tree);
            Fmt.pr "S-DPST written to %s@." path
        | None -> ());
        Fmt.pr "%a %s: %d race report(s), %d distinct step pair(s)@."
          Espbags.Detector.pp_mode mode label (List.length races)
          (List.length (Espbags.Race.dedupe_by_steps races));
        Fmt.pr
          "checked %d access(es) over %d location(s); S-DPST has %d node(s)@."
          n_accesses n_locations res.Rt.Interp.tree.Sdpst.Node.n_nodes;
        if n_skipped > 0 then
          Fmt.pr "skipped %d access(es) proven sequential@." n_skipped;
        if discharged > 0 then
          Fmt.pr
            "discharged %d race report(s) serialized by isolated section(s)@."
            discharged;
        (match spill with
        | Some path when n_spilled > 0 ->
            Fmt.pr "spilled %d race record(s) to %s@." n_spilled path
        | _ -> ());
        List.iteri
          (fun i r ->
            if i < 20 then Fmt.pr "  %a@." Espbags.Race.pp r
            else if i = 20 then Fmt.pr "  ... (%d more)@." (List.length races - 20))
          races;
        (* --strategy=S previews how each repair strategy would fare on
           the detected races, without rewriting anything. *)
        (match strategy with
        | `Finish -> ()
        | choice when races = [] ->
            Fmt.pr "strategy %a: program already race-free@."
              Repair.Strategy.pp_choice choice
        | choice -> (
            match
              Repair.Strategy.run ~mode
                ~backend:(backend :> Repair.Driver.backend)
                choice prog
            with
            | outcome ->
                Fmt.pr "strategy %a: %a would win@." Repair.Strategy.pp_choice
                  choice Repair.Strategy.pp_kind
                  outcome.Repair.Strategy.winner.kind;
                Fmt.pr "%a" pp_candidates outcome
            | exception Repair.Driver.Unrepairable m ->
                Fmt.pr "strategy %a: %s@." Repair.Strategy.pp_choice choice m));
        match trace with
        | Some path ->
            Espbags.Trace.save path ~mode races;
            Fmt.pr "trace written to %s@." path
        | None -> ())
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"OUT" ~doc:"Write a race trace file to $(docv).")
  in
  let dump =
    Arg.(value & flag & info [ "dump-sdpst" ] ~doc:"Print the S-DPST.")
  in
  let dump_tree =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump-tree" ] ~docv:"OUT"
          ~doc:
            "Serialize the S-DPST to $(docv), for offline analysis with \
             $(b,analyze).")
  in
  Cmd.v
    (Cmd.info "detect"
       ~doc:
         "Execute a program under a race detector (ESP-bags or vector \
          clocks, see $(b,--backend)) and report its data races.")
    Term.(
      const run $ file_arg $ mode_arg $ backend_arg $ strategy_arg $ set_arg
      $ trace $ dump_tree $ dump $ static_prune_arg $ shadow_chunk_arg
      $ spill_arg $ timeout_arg)

let analyze_cmd =
  let run file tree_path trace_path output quiet =
    or_die (fun () ->
        let prog = compile file in
        let tree = Sdpst.Serial.tree_of_string (read_file tree_path) in
        let _mode, races = Espbags.Trace.of_string tree (read_file trace_path) in
        let groups, merged = Repair.Driver.place_for_tree ~program:prog races in
        Fmt.pr
          "%d race(s) in %d NS-LCA group(s) -> %d finish statement(s):@."
          (List.length races) (List.length groups)
          (List.length merged.Repair.Static_place.placements);
        let scopes = Mhj.Scopecheck.build prog in
        List.iter
          (fun p ->
            Fmt.pr "  insert finish around %a@."
              (Repair.Report.pp_placement_loc scopes)
              p)
          merged.Repair.Static_place.placements;
        let repaired = Repair.Static_place.apply prog merged in
        let src = Mhj.Pretty.program_to_string repaired in
        match output with
        | Some path ->
            write_file path src;
            Fmt.pr "repaired program written to %s@." path
        | None -> if not quiet then print_string src)
  in
  let tree_path =
    Arg.(
      required
      & opt (some non_dir_file) None
      & info [ "tree" ] ~docv:"FILE"
          ~doc:"S-DPST dump produced by $(b,detect --dump-tree).")
  in
  let trace_path =
    Arg.(
      required
      & opt (some non_dir_file) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Race trace produced by $(b,detect --trace).")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "q"; "quiet" ] ~doc:"Do not print the repaired program.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Compute finish placements offline from a recorded S-DPST and race \
          trace (the paper's Appendix A analyzer; no re-execution).")
    Term.(const run $ file_arg $ tree_path $ trace_path $ output_arg $ quiet)

let static_verify_arg =
  Arg.(
    value & flag
    & info [ "static-verify" ]
        ~doc:
          "After convergence, run the static race checker on the repaired \
           program.  If it discharges every MHP pair, the repair is \
           race-free for $(i,all) inputs; otherwise the unproven pairs \
           are listed and the command exits 4.")

let repair_cmd =
  let run file mode backend placement strategy sets budgets output
      report_flag quiet static_prune static_verify validate_par validate_seed
      budget_validate shadow_chunk spill trace_file metrics_file timeout_ms =
    (* Enable tracing before the compile so the parse/typecheck/normalize
       spans land in the file too. *)
    if trace_file <> None then Obs.Trace.enable ();
    or_die (fun () ->
      Rt.Watchdog.with_timeout ~ms:timeout_ms @@ fun () ->
        check_spill_writable spill;
        let prog = apply_sets (compile file) sets in
        let backend = resolve_backend_verbose prog backend in
        match strategy with
        | (`Isolated | `Elide | `Chunk | `Tournament) as choice ->
            (* Alternative repair strategies go through the tournament
               layer; the winner is verified race-free by a fresh
               detection run before it is printed. *)
            let outcome =
              Repair.Strategy.run ~mode
                ~backend:(backend :> Repair.Driver.backend)
                choice prog
            in
            Fmt.pr "strategy %a: %a wins@." Repair.Strategy.pp_choice choice
              Repair.Strategy.pp_kind outcome.Repair.Strategy.winner.kind;
            Fmt.pr "%a" pp_candidates outcome;
            Option.iter
              (fun path ->
                Obs.Json.save path
                  (Obs.Json.Obj
                     (List.map
                        (fun (k, v) -> (k, Obs.Json.Int v))
                        outcome.Repair.Strategy.metrics)))
              metrics_file;
            Option.iter (fun path -> Obs.Trace.save path) trace_file;
            let src =
              Mhj.Pretty.program_to_string outcome.Repair.Strategy.program
            in
            (match output with
            | Some path ->
                write_file path src;
                Fmt.pr "repaired program written to %s@." path
            | None -> if not quiet then print_string src)
        | `Finish ->
        let validate_par =
          Option.map
            (fun schedules ->
              {
                Par.Validate.schedules;
                seed = validate_seed;
                budget_ms = budget_validate;
              })
            validate_par
        in
        let report =
          Repair.Driver.repair ~mode
            ~backend:(backend :> Repair.Driver.backend)
            ~strategy:placement ~budgets ~static_prune ~static_verify
            ?validate_par ?shadow_chunk ?spill prog
        in
        let n_spilled =
          Option.value ~default:0
            (List.assoc_opt "detector.spilled_races"
               report.Repair.Driver.metrics)
        in
        cleanup_spill spill ~n_spilled;
        (* Write telemetry before anything below can [exit]. *)
        Option.iter (fun path -> Obs.Trace.save path) trace_file;
        Option.iter
          (fun path ->
            Obs.Json.save path
              (Obs.Json.Obj
                 (List.map
                    (fun (k, v) -> (k, Obs.Json.Int v))
                    report.Repair.Driver.metrics)))
          metrics_file;
        if report_flag then Fmt.pr "%a" Repair.Report.pp (prog, report)
        else begin
          Fmt.pr "%s after %d iteration(s); %d finish statement(s) inserted@."
            (if report.converged then "race-free" else "NOT converged")
            (List.length report.iterations)
            (List.length (Repair.Driver.total_placements report));
          List.iter
            (fun d -> Fmt.pr "degraded: %a@." Repair.Guard.pp_degradation d)
            report.degradations
        end;
        (match report.verified_static with
        | Some true ->
            Fmt.pr
              "statically verified: race-free for all inputs (no unproven \
               MHP pair)@."
        | Some false ->
            Fmt.pr
              "static verification incomplete: %d unproven pair(s) remain \
               — race-free for this input only@."
              (List.length report.static_residual);
            List.iter
              (fun f -> Fmt.pr "  %a@." Static.Finding.pp f)
              report.static_residual
        | None -> ());
        (match report.validated_par with
        | Some v when not report_flag ->
            (* the --report path prints this via Report.pp *)
            Fmt.pr "parallel validation: %a@." Par.Validate.pp v
        | _ -> ());
        let src = Mhj.Pretty.program_to_string report.program in
        (match output with
        | Some path ->
            write_file path src;
            Fmt.pr "repaired program written to %s@." path
        | None -> if not quiet then print_string src);
        if not report.converged then exit Ec.not_converged;
        (* a schedule divergence means the "repaired" program still behaves
           nondeterministically: the repair did not actually converge *)
        (match report.validated_par with
        | Some v when v.Par.Validate.divergences <> [] ->
            exit Ec.not_converged
        | _ -> ());
        (* an unverified repair is a degraded result: correct for the test
           input, not proven for all inputs *)
        if report.degradations <> [] || report.verified_static = Some false
        then exit Ec.degraded)
  in
  let report_flag =
    Arg.(
      value & flag
      & info [ "report" ]
          ~doc:"Print the detailed per-iteration repair report.")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "q"; "quiet" ] ~doc:"Do not print the repaired program.")
  in
  let placement =
    Arg.(
      value
      & opt (enum [ ("batch", `Batch); ("incremental", `Incremental) ]) `Batch
      & info [ "placement" ] ~docv:"P"
          ~doc:
            "Finish-placement strategy: $(b,batch) (all NS-LCA groups per \
             detection run) or $(b,incremental) (the paper's §6.1 \
             live-S-DPST loop).")
  in
  let validate_par =
    Arg.(
      value
      & opt ~vopt:(Some 10) (some int) None
      & info [ "validate-par" ] ~docv:"K"
          ~doc:
            "After convergence, re-run the repaired program under $(docv) \
             deterministic fuzzed parallel schedules (default 10) and \
             require each to reproduce the sequential semantics.  A \
             divergence exits 2; schedules skipped under \
             $(b,--budget-validate) exit 4.")
  in
  let validate_seed =
    Arg.(
      value & opt int 1
      & info [ "validate-seed" ] ~docv:"S"
          ~doc:
            "Base schedule seed for $(b,--validate-par); schedule $(i,k) \
             uses seed S+$(i,k), replayable with $(b,run --par=1 --seed).")
  in
  let budget_validate =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget-validate" ] ~docv:"MS"
          ~doc:
            "Wall-clock budget for $(b,--validate-par) in milliseconds; \
             remaining schedules are skipped once it is exceeded (exit \
             code 4).")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome-trace-format JSON timeline of the pipeline to \
             $(docv): one span per stage (parse, detect, placement, \
             rewrite, ...) per repair iteration.  Open it with \
             chrome://tracing or ui.perfetto.dev.")
  in
  let metrics_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write the run's counters (detector, static pruner, parallel \
             engine, driver) to $(docv) as one JSON object with sorted \
             keys.")
  in
  Cmd.v
    (Cmd.info "repair"
       ~doc:
         "Iteratively insert finish statements until the program is \
          race-free for its input (the paper's core tool).  Exit codes: 0 \
          repaired at full fidelity, 2 not converged (or \
          $(b,--validate-par) found a schedule divergence), 3 invalid \
          input, 4 repaired but degraded by a $(b,--budget-*) limit or \
          left unproven by $(b,--static-verify), 5 unrepairable.")
    Term.(
      const run $ file_arg $ mode_arg $ backend_arg $ placement
      $ strategy_arg $ set_arg $ budgets_term $ output_arg $ report_flag
      $ quiet $ static_prune_arg $ static_verify_arg $ validate_par
      $ validate_seed $ budget_validate $ shadow_chunk_arg $ spill_arg
      $ trace_file $ metrics_file $ timeout_arg)

let strip_cmd =
  let run file output =
    or_die (fun () ->
        let prog = Mhj.Transform.strip_finishes (compile file) in
        let src = Mhj.Pretty.program_to_string prog in
        match output with
        | Some path -> write_file path src
        | None -> print_string src)
  in
  Cmd.v
    (Cmd.info "strip"
       ~doc:
         "Remove every finish statement (the paper's §7.1 buggy-program \
          construction).")
    Term.(const run $ file_arg $ output_arg)

let elide_cmd =
  let run file output =
    or_die (fun () ->
        let prog = Mhj.Elision.elide (compile file) in
        let src = Mhj.Pretty.program_to_string prog in
        match output with
        | Some path -> write_file path src
        | None -> print_string src)
  in
  Cmd.v
    (Cmd.info "elide"
       ~doc:"Print the serial elision (all parallel constructs erased).")
    Term.(const run $ file_arg $ output_arg)

let coverage_cmd =
  let run file sets =
    or_die (fun () ->
        let prog = apply_sets (compile file) sets in
        let res = Rt.Interp.run prog in
        let cov = Repair.Coverage.of_runs prog [ res.tree ] in
        Fmt.pr "%a@." Repair.Coverage.pp cov)
  in
  Cmd.v
    (Cmd.info "coverage"
       ~doc:
         "Report which statements and async sites the test input exercises \
          (paper §9 extension).")
    Term.(const run $ file_arg $ set_arg)

let grade_cmd =
  let run verbose =
    or_die (fun () ->
        let summary, verdicts = Benchsuite.Students.grade_all () in
        if verbose then
          List.iter
            (fun (v : Benchsuite.Students.verdict) ->
              Fmt.pr "submission %02d: %a (expected %a), races=%d, cpl=%d, \
                      tool cpl=%d@."
                v.submission.id Benchsuite.Students.pp_expected v.graded
                Benchsuite.Students.pp_expected v.submission.expected v.races
                v.cpl v.tool_cpl)
            verdicts;
        Fmt.pr
          "59 submissions: %d racy, %d over-synchronized, %d matched the \
           tool (paper: 5 / 29 / 25); generator/grader mismatches: %d@."
          summary.racy summary.oversync summary.optimal summary.mismatches)
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Per-submission detail.")
  in
  Cmd.v
    (Cmd.info "grade"
       ~doc:
         "Grade the synthetic student quicksort submissions (paper §7.4).")
    Term.(const run $ verbose)

let grade_file_cmd =
  let run file =
    or_die (fun () ->
        let prog = compile file in
        let det, res = Espbags.Detector.detect Espbags.Detector.Mrw prog in
        let races = Espbags.Detector.race_count det in
        if races > 0 then begin
          Fmt.pr
            "verdict: RACY — %d race(s) remain; e.g. %a@."
            races
            (Fmt.option Espbags.Race.pp)
            (List.nth_opt (Espbags.Detector.races det) 0);
          exit Ec.grade_racy
        end
        else begin
          (* race-free: compare available parallelism against what the tool
             itself would have produced from the unsynchronized version *)
          let stripped = Mhj.Transform.strip_finishes prog in
          let tool = Repair.Driver.repair stripped in
          let tool_res = Rt.Interp.run tool.program in
          let cpl t = Sdpst.Analysis.critical_path_length t in
          let submitted = cpl res.tree and reference = cpl tool_res.tree in
          if submitted > reference then begin
            Fmt.pr
              "verdict: OVER-SYNCHRONIZED — race-free, but critical path %d                vs the tool's %d (%.2fx less parallelism)@."
              submitted reference
              (float_of_int submitted /. float_of_int reference);
            exit Ec.grade_oversync
          end
          else
            Fmt.pr
              "verdict: OPTIMAL — race-free with the tool's parallelism                (critical path %d)@."
              submitted
        end)
  in
  Cmd.v
    (Cmd.info "grade-file"
       ~doc:
         "Grade a finish-insertion exercise submission the way §7.4 grades           the course homework: racy / over-synchronized / matches the           tool's parallelism.  Exit code 0 = optimal, 3 = racy, 4 =           over-synchronized.")
    Term.(const run $ file_arg)

let explain_cmd =
  let run file sets =
    or_die (fun () ->
        let prog = apply_sets (compile file) sets in
        let det, res = Espbags.Detector.detect Espbags.Detector.Mrw prog in
        let races = Espbags.Detector.races det in
        let a, f, s, st = Sdpst.Node.count_by_kind res.tree in
        Fmt.pr
          "S-DPST: %d nodes (%d asyncs, %d finishes, %d scopes, %d steps), \
           depth-first skeleton:@."
          res.tree.Sdpst.Node.n_nodes a f s st;
        let skel = Sdpst.Serial.skeleton res.tree in
        Fmt.pr "  %s@."
          (if String.length skel > 400 then String.sub skel 0 400 ^ "..."
           else skel);
        Fmt.pr "work = %d, critical path = %d, parallelism = %.2f@." res.work
          (Sdpst.Analysis.critical_path_length res.tree)
          (float_of_int res.work
          /. float_of_int
               (max 1 (Sdpst.Analysis.critical_path_length res.tree)));
        if races = [] then Fmt.pr "no data races for this input@."
        else begin
          (* group by contended variable *)
          let by_var = Hashtbl.create 16 in
          List.iter
            (fun (r : Espbags.Race.t) ->
              let v = Fmt.str "%a" Rt.Addr.pp r.addr in
              Hashtbl.replace by_var v
                (1 + Option.value ~default:0 (Hashtbl.find_opt by_var v)))
            races;
          Fmt.pr "%d race report(s) on %d location(s); most contended:@."
            (List.length races) (Hashtbl.length by_var);
          let sorted =
            Hashtbl.fold (fun v n acc -> (n, v) :: acc) by_var []
            |> List.sort (fun a b -> compare b a)
          in
          List.iteri
            (fun i (n, v) -> if i < 10 then Fmt.pr "  %6d  %s@." n v)
            sorted;
          (* per NS-LCA dependence graphs *)
          let groups, merged = Repair.Driver.place_for_tree ~program:prog races in
          Fmt.pr "NS-LCA groups: %d@." (List.length groups);
          List.iteri
            (fun i (g : Repair.Driver.group_result) ->
              if i < 10 then
                Fmt.pr "  group at node %d: %d vertices, %d edges, DP cost %d@."
                  g.lca_id g.n_vertices g.n_edges g.dp_cost)
            groups;
          let scopes = Mhj.Scopecheck.build prog in
          Fmt.pr "suggested repair:@.";
          List.iter
            (fun p ->
              Fmt.pr "  insert finish around %a@."
                (Repair.Report.pp_placement_loc scopes)
                p)
            merged.Repair.Static_place.placements
        end)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Explain a program's parallel structure: S-DPST shape, work and           critical path, contended locations, per-NS-LCA dependence graphs           and the suggested repair — the teaching view behind the paper's           course use-case.")
    Term.(const run $ file_arg $ set_arg)

let bench_list_cmd =
  let run () =
    List.iter
      (fun (b : Benchsuite.Bench.t) ->
        Fmt.pr "%-14s %-9s %s@." b.name b.suite b.descr)
      Benchsuite.Suite.all
  in
  Cmd.v
    (Cmd.info "benchmarks" ~doc:"List the Table 1 benchmark suite.")
    Term.(const run $ const ())

let emit_cmd =
  let run name which output =
    or_die (fun () ->
        match Benchsuite.Suite.find name with
        | None ->
            Fmt.epr "unknown benchmark %S; try 'tdrepair benchmarks'@." name;
            exit Ec.input_error
        | Some b ->
            let src =
              match which with
              | `Repair -> b.repair_src
              | `Perf -> b.perf_src
              | `Stripped ->
                  Mhj.Pretty.program_to_string
                    (Benchsuite.Bench.stripped_program b)
            in
            (match output with
            | Some path -> write_file path src
            | None -> print_string src))
  in
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"Benchmark name (see $(b,benchmarks)).")
  in
  let which =
    Arg.(
      value
      & opt (enum [ ("repair", `Repair); ("perf", `Perf); ("stripped", `Stripped) ]) `Repair
      & info [ "size" ] ~docv:"WHICH"
          ~doc:
            "Which variant to emit: $(b,repair) input size, $(b,perf) input \
             size, or the finish-$(b,stripped) repair-size program.")
  in
  Cmd.v
    (Cmd.info "emit"
       ~doc:"Print a benchmark's Mini-HJ source (for use with the other \
             commands).")
    Term.(const run $ name_arg $ which $ output_arg)

let lint_cmd =
  let run files exit_zero suite explain =
    or_die (fun () ->
        let total = ref 0 in
        let lint_one label prog =
          let findings = Static.Lint.run ~explain prog in
          List.iter
            (fun f -> Fmt.pr "%s: %a@." label Static.Finding.pp f)
            findings;
          total := !total + List.length findings
        in
        List.iter (fun path -> lint_one path (compile path)) files;
        if suite then
          List.iter
            (fun (b : Benchsuite.Bench.t) ->
              lint_one ("bench:" ^ b.name)
                (Mhj.Front.compile b.repair_src))
            Benchsuite.Suite.all;
        if files = [] && not suite then begin
          Fmt.epr "error: no input files (pass FILE... or --suite)@.";
          exit Ec.input_error
        end;
        if !total = 0 then Fmt.pr "no findings@."
        else begin
          Fmt.pr "%d finding(s)@." !total;
          if not exit_zero then exit Ec.lint_findings
        end)
  in
  let files =
    Arg.(
      value & pos_all non_dir_file []
      & info [] ~docv:"FILE" ~doc:"Mini-HJ source files to lint.")
  in
  let exit_zero =
    Arg.(
      value & flag
      & info [ "exit-zero" ]
          ~doc:
            "Exit 0 even when findings are reported (CI mode: only \
             crashes and invalid input fail).")
  in
  let suite =
    Arg.(
      value & flag
      & info [ "suite" ]
          ~doc:"Also lint every built-in benchmark program (in-process).")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "Annotate each static-race finding with the reason the affine \
             index refinement could not discharge the pair (non-affine \
             subscript, non-constant loop bounds, global collision, or a \
             genuine possible overlap).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the static MHP race checker and lint rules (static-race, \
          provably-disjoint, redundant-finish, dead-async, \
          finish-coarsen) without executing the program.  Array conflicts \
          are refined by an affine subscript analysis; see \
          $(b,--explain).  Exit codes: 0 no findings, 3 invalid input, 6 \
          findings reported (0 with $(b,--exit-zero)).")
    Term.(const run $ files $ exit_zero $ suite $ explain)

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/tdrepair.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path the daemon listens on.")

let serve_cmd =
  let run socket workers queue max_frame cache retries backoff_ms timeout_ms
      hard_ms verbose =
    or_die (fun () ->
        Serve.Daemon.run
          {
            Serve.Daemon.socket;
            workers;
            queue_capacity = queue;
            max_frame;
            cache_capacity = cache;
            retries;
            backoff_ms;
            default_timeout_ms = timeout_ms;
            hard_watchdog_ms = hard_ms;
            verbose;
          })
  in
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N"
          ~doc:"Worker domains executing jobs in parallel.")
  in
  let queue =
    Arg.(
      value & opt int 16
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Bounded job-queue capacity.  A job arriving at a full queue \
             is refused with an $(b,overloaded) reply (load shedding), \
             never buffered without bound.")
  in
  let max_frame =
    Arg.(
      value
      & opt int (1 lsl 20)
      & info [ "max-frame" ] ~docv:"BYTES"
          ~doc:
            "Per-connection frame limit: a request line longer than \
             $(docv) bytes gets an $(b,oversized-frame) error and the \
             connection is closed.")
  in
  let cache =
    Arg.(
      value & opt int 64
      & info [ "cache" ] ~docv:"N"
          ~doc:
            "Result-cache capacity (identical program + flags returns the \
             cached report byte-for-byte).  0 disables caching.")
  in
  let retries =
    Arg.(
      value & opt int 2
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Transient-fault retries per job (injected faults, budget \
             exhaustion) before the job is declared $(b,failed).")
  in
  let backoff =
    Arg.(
      value & opt int 10
      & info [ "backoff-ms" ] ~docv:"MS"
          ~doc:
            "First retry delay; doubles per retry, capped.")
  in
  let hard =
    Arg.(
      value & opt int 5000
      & info [ "hard-watchdog-ms" ] ~docv:"MS"
          ~doc:
            "Hard watchdog: a worker busy on one job beyond $(docv) is \
             declared wedged — the job is answered $(b,degraded), the \
             domain abandoned, and a replacement worker spawned.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Log lifecycle events.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the crash-only repair daemon: newline-delimited JSON jobs \
          ($(b,detect)/$(b,repair)/$(b,lint)) over a Unix-domain socket, \
          executed on supervised worker domains with per-job watchdogs, \
          capped-backoff retries, bounded-queue load shedding and a \
          content-hash result cache.  SIGTERM drains in-flight jobs and \
          exits cleanly.  See DESIGN.md §12 for the protocol.")
    Term.(
      const run $ socket_arg $ workers $ queue $ max_frame $ cache $ retries
      $ backoff $ timeout_arg $ hard $ verbose)

let call_cmd =
  let module J = Obs.Json in
  let run socket health shutdown op id file sets timeout_ms trace strategy =
    or_die (fun () ->
        let req =
          if health then J.Obj [ ("op", J.Str "health") ]
          else if shutdown then J.Obj [ ("op", J.Str "shutdown") ]
          else begin
            let file =
              match file with
              | Some f -> f
              | None ->
                  Fmt.epr "error: FILE is required unless --health or \
                           --shutdown is given@.";
                  exit Ec.input_error
            in
            let sets =
              List.filter_map
                (fun spec ->
                  match String.index_opt spec '=' with
                  | Some i ->
                      Option.map
                        (fun v -> (String.sub spec 0 i, J.Int v))
                        (int_of_string_opt
                           (String.sub spec (i + 1)
                              (String.length spec - i - 1)))
                  | None -> None)
                sets
            in
            let flags =
              (if sets = [] then [] else [ ("set", J.Obj sets) ])
              @ (match timeout_ms with
                | Some t -> [ ("timeout_ms", J.Int t) ]
                | None -> [])
              @ (match strategy with
                | `Finish -> []
                | c ->
                    [
                      ( "strategy",
                        J.Str (Fmt.str "%a" Repair.Strategy.pp_choice c) );
                    ])
              @ if trace then [ ("trace", J.Bool true) ] else []
            in
            J.Obj
              ([
                 ("op", J.Str op);
                 ("id", J.Str id);
                 ("src", J.Str (read_file file));
               ]
              @ if flags = [] then [] else [ ("flags", J.Obj flags) ])
          end
        in
        let c = Serve.Client.connect socket in
        Serve.Client.send_json c req;
        match Serve.Client.recv c with
        | None ->
            Fmt.epr "error: daemon closed the connection without replying@.";
            exit Ec.internal_error
        | Some reply ->
            print_endline reply;
            Serve.Client.close c;
            let status =
              Option.bind
                (try J.member "status" (J.of_string reply)
                 with J.Parse_error _ -> None)
                (function J.Str s -> Some s | _ -> None)
            in
            (match status with
            | Some ("ok" | "draining") | None -> ()
            | Some "degraded" -> exit Ec.degraded
            | Some _ -> exit Ec.internal_error))
  in
  let health =
    Arg.(
      value & flag
      & info [ "health" ] ~doc:"Request the daemon's health report.")
  in
  let shutdown =
    Arg.(
      value & flag & info [ "shutdown" ] ~doc:"Ask the daemon to drain.")
  in
  let op =
    Arg.(
      value
      & opt (enum [ ("detect", "detect"); ("repair", "repair");
                    ("lint", "lint") ]) "repair"
      & info [ "op" ] ~docv:"OP" ~doc:"Job kind to submit.")
  in
  let id =
    Arg.(
      value & opt string "cli"
      & info [ "id" ] ~docv:"ID" ~doc:"Client job id echoed on the reply.")
  in
  let file =
    Arg.(
      value
      & pos 0 (some non_dir_file) None
      & info [] ~docv:"FILE" ~doc:"Mini-HJ source file to submit.")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:"Ask for the job's pipeline span names in the reply.")
  in
  Cmd.v
    (Cmd.info "call"
       ~doc:
         "Submit one job (or a health/shutdown request) to a running \
          $(b,tdrepair serve) daemon and print the raw JSON reply.  Exit \
          codes: 0 ok, 4 degraded, 1 failed/overloaded.")
    Term.(
      const run $ socket_arg $ health $ shutdown $ op $ id $ file $ set_arg
      $ timeout_arg $ trace $ strategy_arg)

let main_cmd =
  let doc =
    "test-driven repair of data races in structured parallel programs \
     (PLDI 2014 reproduction)"
  in
  Cmd.group
    (Cmd.info "tdrepair" ~version:"1.0.0" ~doc)
    [
      parse_cmd; run_cmd; detect_cmd; analyze_cmd; repair_cmd; lint_cmd;
      strip_cmd; elide_cmd; coverage_cmd; grade_cmd; grade_file_cmd;
      explain_cmd; bench_list_cmd; emit_cmd; serve_cmd; call_cmd;
    ]

let () =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning);
  exit (Cmd.eval main_cmd)
