(* Static-prune ablation: detection time with and without the static MHP
   pre-pass (`tdrepair detect --static-prune`), per benchmark.

   For each benchmark (finish-stripped, repair input sizes) the sweep runs
   the MRW detector twice — unpruned, and with the Static.Prune keep
   predicate — and reports both times, the fraction of monitored
   statements the pre-pass discharges, and the accesses actually skipped
   at run time.  The race sets of the two runs are asserted identical
   (the soundness contract of lib/static/prune.mli): a mismatch aborts
   the sweep rather than print a corrupt table. *)

let time = Clock.time

let hr () = Fmt.pr "%s@." (String.make 100 '-')

(* Stable across runs: node ids differ, static coordinates do not. *)
let race_signature (r : Espbags.Race.t) =
  ( r.src.Sdpst.Node.origin_bid,
    r.src.Sdpst.Node.origin_idx,
    r.sink.Sdpst.Node.origin_bid,
    r.sink.Sdpst.Node.origin_idx,
    Fmt.str "%a" Rt.Addr.pp r.addr,
    Fmt.str "%a" Espbags.Race.pp_kind r.kind )

let signatures det =
  List.sort_uniq compare
    (List.map race_signature (Espbags.Detector.races det))

type row = {
  name : string;
  full_ms : float;
  pruned_ms : float;
  analysis_ms : float;
  races : int;
  stmts_kept : int;
  stmts_total : int;
  skipped : int;
  accesses : int;
}

let sweep_row (b : Benchsuite.Bench.t) : row =
  let prog = Benchsuite.Bench.stripped_program b in
  let (full, _), full_s =
    time (fun () -> Espbags.Detector.detect Espbags.Detector.Mrw prog)
  in
  let pr, analysis_s = time (fun () -> Static.Prune.make prog) in
  let (pruned, _), pruned_s =
    time (fun () ->
        Espbags.Detector.detect
          ~keep:(Static.Prune.keep_fn pr)
          Espbags.Detector.Mrw prog)
  in
  if signatures full <> signatures pruned then
    Fmt.failwith
      "%s: race sets differ under --static-prune (full %d, pruned %d)"
      b.name
      (Espbags.Detector.race_count full)
      (Espbags.Detector.race_count pruned);
  {
    name = b.name;
    full_ms = full_s *. 1000.0;
    pruned_ms = pruned_s *. 1000.0;
    analysis_ms = analysis_s *. 1000.0;
    races = Espbags.Detector.race_count full;
    stmts_kept = Static.Prune.n_kept pr;
    stmts_total = Static.Prune.n_stmts pr;
    skipped = pruned.Espbags.Detector.n_skipped;
    accesses = full.Espbags.Detector.n_accesses;
  }

let run () =
  Fmt.pr "@.Static-prune ablation: MRW detection with/without the MHP \
          pre-pass@.";
  hr ();
  Fmt.pr "%-14s %10s %10s %10s %7s %12s %14s %10s@." "Benchmark" "full ms"
    "pruned ms" "static ms" "races" "stmts kept" "accesses" "skipped";
  hr ();
  let rows = List.map sweep_row Benchsuite.Suite.all in
  List.iter
    (fun r ->
      Fmt.pr "%-14s %10.1f %10.1f %10.1f %7d %6d/%-5d %14d %10d@." r.name
        r.full_ms r.pruned_ms r.analysis_ms r.races r.stmts_kept
        r.stmts_total r.accesses r.skipped)
    rows;
  hr ();
  let total f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  let kept = total (fun r -> r.stmts_kept)
  and stmts = total (fun r -> r.stmts_total)
  and skipped = total (fun r -> r.skipped)
  and accesses = total (fun r -> r.accesses) in
  Fmt.pr
    "overall: %d of %d monitored statement(s) discharged statically \
     (%.0f%%); %d of %d access(es) skipped (%.0f%%); race sets identical \
     on every benchmark@."
    (stmts - kept) stmts
    (100.0 *. float_of_int (stmts - kept) /. float_of_int (max 1 stmts))
    skipped accesses
    (100.0 *. float_of_int skipped /. float_of_int (max 1 accesses))
