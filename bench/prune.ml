(* Static-prune ablation: detection time with and without the static MHP
   pre-pass (`tdrepair detect --static-prune`), per benchmark, and the
   coarse-vs-index-sensitive refinement ablation.

   For each benchmark (finish-stripped, repair input sizes) the sweep
   runs the MRW detector three times — unpruned, pruned by the coarse
   region analysis (Static.Prune.make ~refine:false, the PR 2 baseline),
   and pruned with the affine index refinement (the default) — and
   reports the times, the statements each pre-pass keeps monitored, and
   the accesses actually skipped at run time.  The race sets of all
   three runs are asserted identical (the soundness contract of
   lib/static/prune.mli), and the refined kept set is asserted a subset
   of the coarse one (refinement is strictly one-sided): a violation
   aborts the sweep rather than print a corrupt table.

   The finish-stripped programs are the detector's worst case — with the
   joins gone, most writes genuinely race with the final result reads,
   so there is little left for index reasoning to discharge.  The sweep
   therefore also analyzes each benchmark's finish-intact (expert)
   program, where the refinement's static effect shows directly: the
   `intact conflicts` column reports coarse -> refined unproven-pair
   counts (series drops to 0 — statically verified race-free).

   Environment knobs: TDR_PRUNE_MIN_DISCHARGE (minimum additional
   statements the refinement must discharge across the suite, stripped
   and intact programs combined; default 1), TDR_BENCH_PRUNE_JSON
   (output path, default BENCH_prune.json; "-" disables).  The quick
   variant (`bench prune-quick`, @ci) skips the JSON but keeps every
   assertion and the discharge floor. *)

let time = Clock.time

let hr () = Fmt.pr "%s@." (String.make 112 '-')

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> default)
  | None -> default

(* Stable across runs: node ids differ, static coordinates do not. *)
let race_signature (r : Espbags.Race.t) =
  ( r.src.Sdpst.Node.origin_bid,
    r.src.Sdpst.Node.origin_idx,
    r.sink.Sdpst.Node.origin_bid,
    r.sink.Sdpst.Node.origin_idx,
    Fmt.str "%a" Rt.Addr.pp r.addr,
    Fmt.str "%a" Espbags.Race.pp_kind r.kind )

let signatures det =
  List.sort_uniq compare
    (List.map race_signature (Espbags.Detector.races det))

type row = {
  name : string;
  full_ms : float;
  coarse_ms : float;  (** detection under the coarse keep predicate *)
  refined_ms : float;  (** detection under the refined keep predicate *)
  analysis_ms : float;  (** refined [Static.Prune.make], paid once *)
  races : int;
  coarse_kept : int;
  refined_kept : int;
  stmts_total : int;
  skipped : int;  (** accesses skipped under the refined predicate *)
  accesses : int;
  (* finish-intact (expert) program: the refinement's static effect *)
  intact_stmts : int;
  intact_coarse_kept : int;
  intact_refined_kept : int;
  intact_coarse_conflicts : int;
  intact_refined_conflicts : int;
}

let sweep_row (b : Benchsuite.Bench.t) : row =
  let prog = Benchsuite.Bench.stripped_program b in
  let (full, _), full_s =
    time (fun () -> Espbags.Detector.detect Espbags.Detector.Mrw prog)
  in
  let coarse_pr = Static.Prune.make ~refine:false prog in
  let pr, analysis_s = time (fun () -> Static.Prune.make prog) in
  let (coarse_pruned, _), coarse_s =
    time (fun () ->
        Espbags.Detector.detect
          ~keep:(Static.Prune.keep_fn coarse_pr)
          Espbags.Detector.Mrw prog)
  in
  let (pruned, _), refined_s =
    time (fun () ->
        Espbags.Detector.detect
          ~keep:(Static.Prune.keep_fn pr)
          Espbags.Detector.Mrw prog)
  in
  let full_sigs = signatures full in
  if full_sigs <> signatures coarse_pruned then
    Fmt.failwith "%s: race sets differ under the coarse prune" b.name;
  if full_sigs <> signatures pruned then
    Fmt.failwith
      "%s: race sets differ under --static-prune (full %d, pruned %d)"
      b.name
      (Espbags.Detector.race_count full)
      (Espbags.Detector.race_count pruned);
  if Static.Prune.n_kept pr > Static.Prune.n_kept coarse_pr then
    Fmt.failwith
      "%s: refinement kept %d statement(s), coarse only %d — refinement \
       must be one-sided"
      b.name (Static.Prune.n_kept pr)
      (Static.Prune.n_kept coarse_pr);
  let iprog = Benchsuite.Bench.repair_program b in
  let icoarse = Static.Prune.make ~refine:false iprog in
  let irefined = Static.Prune.make iprog in
  if Static.Prune.n_kept irefined > Static.Prune.n_kept icoarse then
    Fmt.failwith "%s (intact): refinement must be one-sided" b.name;
  {
    name = b.name;
    full_ms = full_s *. 1000.0;
    coarse_ms = coarse_s *. 1000.0;
    refined_ms = refined_s *. 1000.0;
    analysis_ms = analysis_s *. 1000.0;
    races = Espbags.Detector.race_count full;
    coarse_kept = Static.Prune.n_kept coarse_pr;
    refined_kept = Static.Prune.n_kept pr;
    stmts_total = Static.Prune.n_stmts pr;
    skipped = pruned.Espbags.Detector.n_skipped;
    accesses = full.Espbags.Detector.n_accesses;
    intact_stmts = Static.Prune.n_stmts irefined;
    intact_coarse_kept = Static.Prune.n_kept icoarse;
    intact_refined_kept = Static.Prune.n_kept irefined;
    intact_coarse_conflicts = Static.Prune.n_conflicts icoarse;
    intact_refined_conflicts = Static.Prune.n_conflicts irefined;
  }

let json_of_rows rows =
  let buf = Buffer.create 2048 in
  let row_json r =
    Fmt.str
      "    {\"name\": %S, \"full_ms\": %.3f, \"coarse_pruned_ms\": %.3f, \
       \"refined_pruned_ms\": %.3f, \"analysis_ms\": %.3f, \"races\": %d, \
       \"stmts_total\": %d, \"coarse_kept\": %d, \"refined_kept\": %d, \
       \"accesses\": %d, \"skipped_accesses\": %d, \"intact_stmts\": %d, \
       \"intact_coarse_kept\": %d, \"intact_refined_kept\": %d, \
       \"intact_coarse_conflicts\": %d, \"intact_refined_conflicts\": %d}"
      r.name r.full_ms r.coarse_ms r.refined_ms r.analysis_ms r.races
      r.stmts_total r.coarse_kept r.refined_kept r.accesses r.skipped
      r.intact_stmts r.intact_coarse_kept r.intact_refined_kept
      r.intact_coarse_conflicts r.intact_refined_conflicts
  in
  let total f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Fmt.str "  \"stmts_total\": %d,\n" (total (fun r -> r.stmts_total)));
  Buffer.add_string buf
    (Fmt.str "  \"coarse_kept\": %d,\n" (total (fun r -> r.coarse_kept)));
  Buffer.add_string buf
    (Fmt.str "  \"refined_kept\": %d,\n" (total (fun r -> r.refined_kept)));
  Buffer.add_string buf
    (Fmt.str "  \"intact_coarse_kept\": %d,\n"
       (total (fun r -> r.intact_coarse_kept)));
  Buffer.add_string buf
    (Fmt.str "  \"intact_refined_kept\": %d,\n"
       (total (fun r -> r.intact_refined_kept)));
  Buffer.add_string buf
    (Fmt.str "  \"intact_coarse_conflicts\": %d,\n"
       (total (fun r -> r.intact_coarse_conflicts)));
  Buffer.add_string buf
    (Fmt.str "  \"intact_refined_conflicts\": %d,\n"
       (total (fun r -> r.intact_refined_conflicts)));
  Buffer.add_string buf
    (Fmt.str "  \"refinement_extra_discharged\": %d,\n"
       (total (fun r ->
            r.coarse_kept - r.refined_kept
            + (r.intact_coarse_kept - r.intact_refined_kept))));
  Buffer.add_string buf "  \"rows\": [\n";
  Buffer.add_string buf (String.concat ",\n" (List.map row_json rows));
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let sweep ~quick () =
  Fmt.pr
    "@.Static-prune ablation: MRW detection unpruned / coarse regions / \
     affine-refined@.";
  hr ();
  Fmt.pr "%-14s %9s %9s %9s %9s %6s %13s %13s %10s %17s@." "Benchmark"
    "full ms" "coarse ms" "refined" "static" "races" "kept c/r" "accesses"
    "skipped" "intact conflicts";
  hr ();
  let rows = List.map sweep_row Benchsuite.Suite.all in
  List.iter
    (fun r ->
      Fmt.pr "%-14s %9.1f %9.1f %9.1f %9.1f %6d %5d/%-3d of %-3d %13d %10d \
              %8d -> %-4d@."
        r.name r.full_ms r.coarse_ms r.refined_ms r.analysis_ms r.races
        r.coarse_kept r.refined_kept r.stmts_total r.accesses r.skipped
        r.intact_coarse_conflicts r.intact_refined_conflicts)
    rows;
  hr ();
  let total f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  let coarse_kept = total (fun r -> r.coarse_kept)
  and refined_kept = total (fun r -> r.refined_kept)
  and stmts = total (fun r -> r.stmts_total)
  and skipped = total (fun r -> r.skipped)
  and accesses = total (fun r -> r.accesses)
  and icoarse_kept = total (fun r -> r.intact_coarse_kept)
  and irefined_kept = total (fun r -> r.intact_refined_kept)
  and icoarse_cs = total (fun r -> r.intact_coarse_conflicts)
  and irefined_cs = total (fun r -> r.intact_refined_conflicts) in
  Fmt.pr
    "overall (stripped): %d of %d statement(s) discharged coarsely, %d \
     refined (+%d); %d of %d access(es) skipped (%.0f%%); race sets \
     identical on every benchmark@."
    (stmts - coarse_kept) stmts (stmts - refined_kept)
    (coarse_kept - refined_kept) skipped accesses
    (100.0 *. float_of_int skipped /. float_of_int (max 1 accesses));
  Fmt.pr
    "overall (finish-intact): kept statements %d -> %d, unproven conflicts \
     %d -> %d under the affine refinement@."
    icoarse_kept irefined_kept icoarse_cs irefined_cs;
  let extra =
    coarse_kept - refined_kept + (icoarse_kept - irefined_kept)
  in
  let floor = env_int "TDR_PRUNE_MIN_DISCHARGE" 1 in
  if extra < floor then
    failwith
      (Fmt.str
         "prune bench: the affine refinement discharged only %d additional \
          statement(s), below the %d floor (TDR_PRUNE_MIN_DISCHARGE) — \
          refinement regression?"
         extra floor);
  if quick then ()
  else
    match Sys.getenv_opt "TDR_BENCH_PRUNE_JSON" with
    | Some "-" -> ()
    | path_opt ->
        let path = Option.value ~default:"BENCH_prune.json" path_opt in
        let oc = open_out path in
        output_string oc (json_of_rows rows);
        close_out oc;
        Fmt.pr "[prune data written to %s]@." path

let run () = sweep ~quick:false ()

(* CI variant: no JSON, but the full race-set identity, one-sidedness and
   discharge-floor assertions over the whole Table 1 suite. *)
let run_quick () = sweep ~quick:true ()
