(* Reproduction harness for every table and figure of the paper's
   evaluation (§7).  Each function prints the same rows/series the paper
   reports; EXPERIMENTS.md records paper-vs-measured. *)

let time = Clock.time

let hr () = Fmt.pr "%s@." (String.make 100 '-')

(* ------------------------------------------------------------------ *)
(* Table 1: benchmark inventory                                        *)
(* ------------------------------------------------------------------ *)

let table1 () =
  Fmt.pr "@.Table 1: List of Benchmarks Evaluated@.";
  hr ();
  Fmt.pr "%-10s %-14s %-46s %-28s %s@." "Source" "Benchmark" "Description"
    "Input (Repair)" "Input (Performance)";
  hr ();
  List.iter
    (fun (b : Benchsuite.Bench.t) ->
      Fmt.pr "%-10s %-14s %-46s %-28s %s@." b.suite b.name b.descr
        b.repair_params b.perf_params)
    Benchsuite.Suite.all

(* ------------------------------------------------------------------ *)
(* Table 2: time for program repair (repair input sizes)               *)
(* ------------------------------------------------------------------ *)

type t2_row = {
  name : string;
  seq_ms : float;
  detect_ms : float;
  nodes : int;
  races : int;
  repair_s : float;
  iterations : int;
  converged : bool;
}

(* The paper's repair time is dominated by reading the detector's trace
   files and rebuilding the internal representation (§7.2), so the repair
   phase here goes through the same file hand-off: serialize the S-DPST
   and race trace, reload both, place, apply, and verify. *)
let table2_row (b : Benchsuite.Bench.t) : t2_row =
  let stripped = Benchsuite.Bench.stripped_program b in
  (* HJ-Seq: plain (detector-free) execution *)
  let _, seq_s = time (fun () -> Rt.Interp.run stripped) in
  let (det, res), detect_s =
    time (fun () -> Espbags.Detector.detect Espbags.Detector.Mrw stripped)
  in
  let races = Espbags.Detector.races det in
  let tree_path = Filename.temp_file "tdrace_t2" ".tree" in
  let trace_path = Filename.temp_file "tdrace_t2" ".trc" in
  let write path s =
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
        output_string oc s)
  in
  let read path =
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  in
  write tree_path (Sdpst.Serial.tree_to_string res.tree);
  Espbags.Trace.save trace_path ~mode:Espbags.Detector.Mrw races;
  let (converged, iterations), repair_s =
    time (fun () ->
        let tree = Sdpst.Serial.tree_of_string (read tree_path) in
        let _mode, loaded = Espbags.Trace.load trace_path tree in
        let _groups, merged =
          Repair.Driver.place_for_tree ~program:stripped loaded
        in
        let repaired = Repair.Static_place.apply stripped merged in
        let check, _ =
          Espbags.Detector.detect Espbags.Detector.Mrw repaired
        in
        (Espbags.Detector.race_count check = 0, 1))
  in
  Sys.remove tree_path;
  Sys.remove trace_path;
  {
    name = b.name;
    seq_ms = seq_s *. 1000.;
    detect_ms = detect_s *. 1000.;
    nodes = res.tree.Sdpst.Node.n_nodes;
    races = List.length races;
    repair_s;
    iterations;
    converged;
  }

let table2 () =
  Fmt.pr "@.Table 2: Time for Program Repair (repair input sizes)@.";
  hr ();
  Fmt.pr "%-14s %12s %16s %14s %12s %12s %6s@." "Benchmark" "Seq (ms)"
    "Detection (ms)" "S-DPST nodes" "Races (MRW)" "Repair (s)" "Iters";
  hr ();
  List.iter
    (fun b ->
      let r = table2_row b in
      Fmt.pr "%-14s %12.2f %16.2f %14d %12d %12.2f %5d%s@." r.name r.seq_ms
        r.detect_ms r.nodes r.races r.repair_s r.iterations
        (if r.converged then "" else " !NOT CONVERGED"))
    Benchsuite.Suite.all

(* ------------------------------------------------------------------ *)
(* Tables 3 and 4: SRW vs MRW                                          *)
(* ------------------------------------------------------------------ *)

let table3_4 () =
  Fmt.pr
    "@.Table 3: Comparison of SRW and MRW ESP-Bags (times) and Table 4 \
     (race counts)@.";
  hr ();
  Fmt.pr "%-14s | %11s %11s | %10s %10s | %11s | %9s %9s | %9s %9s@."
    "Benchmark" "Detect SRW" "Detect MRW" "Repair SRW" "Repair MRW"
    "2nd Det SRW" "Tot SRW" "Tot MRW" "Races SRW" "Races MRW";
  hr ();
  List.iter
    (fun (b : Benchsuite.Bench.t) ->
      let stripped = Benchsuite.Bench.stripped_program b in
      let (det_srw, _), t_det_srw =
        time (fun () -> Espbags.Detector.detect Espbags.Detector.Srw stripped)
      in
      let (det_mrw, _), t_det_mrw =
        time (fun () -> Espbags.Detector.detect Espbags.Detector.Mrw stripped)
      in
      let rep_srw, t_rep_srw =
        time (fun () -> Repair.Driver.repair ~mode:Espbags.Detector.Srw stripped)
      in
      let _rep_mrw, t_rep_mrw =
        time (fun () -> Repair.Driver.repair ~mode:Espbags.Detector.Mrw stripped)
      in
      (* the SRW confirmation run: detection on the repaired program *)
      let _, t_second =
        time (fun () ->
            Espbags.Detector.detect Espbags.Detector.Srw rep_srw.program)
      in
      Fmt.pr
        "%-14s | %9.1fms %9.1fms | %9.2fs %9.2fs | %9.1fms | %8.2fs %8.2fs \
         | %9d %9d@."
        b.name (t_det_srw *. 1000.) (t_det_mrw *. 1000.) t_rep_srw t_rep_mrw
        (t_second *. 1000.)
        (t_rep_srw +. t_second)
        t_rep_mrw
        (Espbags.Detector.race_count det_srw)
        (Espbags.Detector.race_count det_mrw))
    Benchsuite.Suite.all

(* ------------------------------------------------------------------ *)
(* Figure 16: performance of the repaired programs                     *)
(* ------------------------------------------------------------------ *)

let fig16_procs = 12

let fig16 () =
  Fmt.pr
    "@.Figure 16: execution times (simulated cost units, %d processors) \
     for sequential, original parallel and repaired parallel versions@."
    fig16_procs;
  hr ();
  Fmt.pr "%-14s %14s %14s %14s %10s %10s@." "Benchmark" "Sequential"
    "Original T12" "Repaired T12" "Rep/Orig" "Seq/Rep";
  hr ();
  List.iter
    (fun (b : Benchsuite.Bench.t) ->
      let expert = Benchsuite.Bench.perf_program b in
      let res = Rt.Interp.run expert in
      let g = Compgraph.Graph.of_sdpst res.tree in
      let t_seq = res.work in
      let t_orig = Compgraph.Sched.makespan ~procs:fig16_procs g in
      (* repair the finish-stripped perf program (SRW: cheaper detection at
         performance sizes, same final placements) *)
      let stripped = Mhj.Transform.strip_finishes expert in
      let report =
        Repair.Driver.repair ~mode:Espbags.Detector.Srw stripped
      in
      let res_rep = Rt.Interp.run report.program in
      let g_rep = Compgraph.Graph.of_sdpst res_rep.tree in
      let t_rep = Compgraph.Sched.makespan ~procs:fig16_procs g_rep in
      Fmt.pr "%-14s %14d %14d %14d %10.2f %10.1f%s@." b.name t_seq t_orig
        t_rep
        (float_of_int t_rep /. float_of_int (max 1 t_orig))
        (float_of_int t_seq /. float_of_int (max 1 t_rep))
        (if report.converged then "" else " !NOT CONVERGED"))
    Benchsuite.Suite.all;
  hr ();
  Fmt.pr
    "shape check (paper): repaired ~= original parallel, both well below \
     sequential@."

(* ------------------------------------------------------------------ *)
(* Figure 3/4: the worked placement example                            *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  Fmt.pr "@.Figures 3/4: placement example (times 500/10/10/400/600/500; \
          deps B->D, A->F, D->F)@.";
  let g = Bench_graphs.figure3 () in
  List.iter
    (fun (name, intervals) ->
      Fmt.pr "  %-24s CPL = %4d@." name
        (Repair.Dp_place.eval_placement g intervals))
    [
      ("( A ) ( B ) C ( D ) E F", [ (0, 0); (1, 1); (3, 3) ]);
      ("( A B ) C ( D ) E F", [ (0, 1); (3, 3) ]);
      ("( A B C ) ( D ) E F", [ (0, 2); (3, 3) ]);
      ("( A ( B ) C D E ) F", [ (0, 4); (1, 1) ]);
    ];
  let out = Repair.Dp_place.solve g in
  Fmt.pr "  Algorithm 1 optimum:      CPL = %4d  (FinishSet %a)@." out.cost
    Fmt.(Dump.list (Dump.pair int int))
    out.finishes

(* ------------------------------------------------------------------ *)
(* §7.4: student homework                                              *)
(* ------------------------------------------------------------------ *)

let students () =
  Fmt.pr "@.§7.4: student homework evaluation (59 submissions)@.";
  let summary, _ = Benchsuite.Students.grade_all ~n:64 () in
  Fmt.pr "  measured: %2d racy, %2d over-synchronized, %2d matched the tool@."
    summary.racy summary.oversync summary.optimal;
  Fmt.pr "  paper:     5 racy, 29 over-synchronized, 25 matched the tool@.";
  Fmt.pr "  generator/grader mismatches: %d@." summary.mismatches

(* ------------------------------------------------------------------ *)
(* Ablations (design choices called out in DESIGN.md §4)               *)
(* ------------------------------------------------------------------ *)

(* Scheduler ablation: the Figure 16 result must not depend on the
   idealized greedy scheduler, so re-run the repaired programs under the
   work-stealing simulator with both task-creation policies. *)
let ablation_sched () =
  Fmt.pr
    "@.Ablation A: repaired-program T12 under greedy vs work-stealing \
     (repair input sizes)@.";
  hr ();
  Fmt.pr "%-14s %12s %14s %14s %10s@." "Benchmark" "Greedy" "WS work-first"
    "WS help-first" "Steals";
  hr ();
  List.iter
    (fun (b : Benchsuite.Bench.t) ->
      let stripped = Benchsuite.Bench.stripped_program b in
      let report = Repair.Driver.repair stripped in
      let res = Rt.Interp.run report.program in
      let g = Compgraph.Graph.of_sdpst res.tree in
      let greedy = Compgraph.Sched.makespan ~procs:12 g in
      let wf =
        Compgraph.Steal.simulate ~procs:12 ~policy:Compgraph.Steal.Work_first g
      in
      let hf =
        Compgraph.Steal.simulate ~procs:12 ~policy:Compgraph.Steal.Help_first g
      in
      Fmt.pr "%-14s %12d %14d %14d %10d@." b.name greedy wf.makespan
        hf.makespan wf.steals)
    Benchsuite.Suite.all;
  Fmt.pr
    "(work-stealing pays steal overheads, so its makespans sit slightly \
     above greedy;@. the repaired-vs-original ordering is unchanged)@."

(* Coalescing ablation: dependence-graph sizes and placement wall time
   with and without vertex coalescing, on a mergesort small enough that
   the uncoalesced O(n^3 d) DP still terminates. *)
let ablation_coalesce () =
  Fmt.pr "@.Ablation B: dependence-graph coalescing (mergesort, n = 192)@.";
  hr ();
  let stripped =
    Mhj.Transform.strip_finishes
      (Mhj.Front.compile (Benchsuite.Mergesort.source ~n:192 ~seed:3))
  in
  let det, _res = Espbags.Detector.detect Espbags.Detector.Mrw stripped in
  let races = Espbags.Race.dedupe_by_steps (Espbags.Detector.races det) in
  let span, _ = Sdpst.Analysis.span_memo () in
  let groups = Hashtbl.create 64 in
  List.iter
    (fun (r : Espbags.Race.t) ->
      let lca = Sdpst.Lca.ns_lca r.src r.sink in
      let cur =
        match Hashtbl.find_opt groups lca.Sdpst.Node.id with
        | Some (n, rs) -> (n, r :: rs)
        | None -> (lca, [ r ])
      in
      Hashtbl.replace groups lca.Sdpst.Node.id cur)
    races;
  List.iter
    (fun coalesce ->
      let t0 = Clock.now_ns () in
      let max_n = ref 0 in
      let total_cost = ref 0 in
      Hashtbl.iter
        (fun _ (lca, rs) ->
          let g = Repair.Depgraph.build ~coalesce ~span lca (List.rev rs) in
          max_n := max !max_n (Repair.Depgraph.n_vertices g);
          let out = Repair.Dp_place.solve g in
          total_cost := !total_cost + out.cost)
        groups;
      Fmt.pr
        "  coalesce=%-5b groups=%d  max vertices=%4d  sum of DP optima=%d  \
         wall=%.3fs@."
        coalesce (Hashtbl.length groups) !max_n !total_cost
        (Clock.elapsed_s t0))
    [ true; false ];
  Fmt.pr
    "(the wall-time gap is the O(n^3) blow-up coalescing removes; merging \
     sink runs with@. heterogeneous predecessor sets can forgo a few percent \
     of the per-instance ideal@. (boundaries inside the run), but the \
     realized static placements — and the end-to-end@. repaired CPL — are \
     unchanged on every benchmark)@."

let ablation () =
  ablation_sched ();
  ablation_coalesce ()
