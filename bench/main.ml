(* Benchmark harness entry point.

   With no argument, regenerates every table and figure of the paper's
   evaluation section and then runs the Bechamel micro-benchmarks.  A
   single argument selects one piece:

     dune exec bench/main.exe -- [table1|table2|table3|table4|fig3|fig16|
                                  students|ablation|prune|prune-quick|
                                  detector|detector-quick|scale|scale-quick|
                                  strategies|strategies-quick|speedup|micro|all]

   (table3 and table4 are produced by the same SRW-vs-MRW sweep;
   detector-quick and prune-quick are the CI variants of the
   detector-overhead and prune-ablation sweeps.) *)

let usage () =
  Fmt.epr
    "usage: main.exe \
     [table1|table2|table3|table4|fig3|fig16|students|ablation|prune|prune-quick|detector|detector-quick|scale|scale-quick|strategies|strategies-quick|speedup|micro|all]@.";
  exit 1

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let t0 = Clock.now_ns () in
  (match which with
  | "table1" -> Tables.table1 ()
  | "table2" -> Tables.table2 ()
  | "table3" | "table4" -> Tables.table3_4 ()
  | "fig3" -> Tables.fig3 ()
  | "fig16" -> Tables.fig16 ()
  | "students" -> Tables.students ()
  | "ablation" -> Tables.ablation ()
  | "prune" -> Prune.run ()
  | "prune-quick" -> Prune.run_quick ()
  | "detector" -> Detector.run ()
  | "detector-quick" -> Detector.run_quick ()
  | "scale" -> Scale.run ()
  | "scale-quick" -> Scale.run_quick ()
  | "strategies" -> Strategies.run ()
  | "strategies-quick" -> Strategies.run_quick ()
  | "speedup" -> Speedup.run ()
  | "micro" -> Micro.run_and_print ()
  | "all" ->
      Tables.table1 ();
      Tables.fig3 ();
      Tables.table2 ();
      Tables.table3_4 ();
      Tables.fig16 ();
      Tables.students ();
      Tables.ablation ();
      Prune.run ();
      Detector.run ();
      Scale.run ();
      Strategies.run ();
      Speedup.run ();
      Micro.run_and_print ()
  | _ -> usage ());
  Fmt.pr "@.[bench completed in %.1fs]@." (Clock.elapsed_s t0)
