(* Shared timing policy for the benchmark harness.

   All wall-clock measurements go through the monotonic clock (bechamel's
   clock_gettime(CLOCK_MONOTONIC) stub) rather than gettimeofday, which
   can jump under NTP.  [time] is a one-shot measurement; [time_run] is
   the warmup/repeat policy for numbers that get printed in tables:
   [warmup] discarded runs to fill caches and reach a steady allocator
   state, then the minimum of [repeat] timed runs (minimum, not mean:
   external preemption only ever adds time). *)

let now_ns () : int64 = Monotonic_clock.now ()

let elapsed_s t0 = Int64.to_float (Int64.sub (now_ns ()) t0) *. 1e-9

let time f =
  let t0 = now_ns () in
  let r = f () in
  (r, elapsed_s t0)

let time_run ?(warmup = 1) ?(repeat = 3) f =
  for _ = 1 to warmup do
    ignore (f ())
  done;
  let best = ref infinity in
  let res = ref None in
  for _ = 1 to max 1 repeat do
    let r, s = time f in
    res := Some r;
    if s < !best then best := s
  done;
  (Option.get !res, !best)
