(* Shared timing policy for the benchmark harness.

   Since PR 5 the actual clock and the warmup/repeat policy live in
   [Obs.Clock] (lib/obs), which carries its own CLOCK_MONOTONIC stub so
   the runtime libraries do not depend on bechamel (a test-only dep).
   This module stays as the bench-local name so call sites keep reading
   [Clock.time_run]. *)

let now_ns = Obs.Clock.now_ns
let elapsed_s = Obs.Clock.elapsed_s
let time = Obs.Clock.time
let time_run = Obs.Clock.time_run
