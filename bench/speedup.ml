(* `bench speedup`: sequential-vs-parallel wall clock per benchsuite
   program, on the real domains backend.

   Interpreting Mini-HJ is pure CPU work, so raw wall-clock speedup would
   only measure how many hardware cores this machine happens to have.
   Instead every execution is *paced* (Par.Engine's [pace_ns]): each cost
   unit also costs a fixed slice of sleep, sized so the sequential run
   takes [target_s].  Sleep overlaps across domains exactly like compute
   overlaps across cores, so the measured speedup reflects the schedule's
   available overlap — bounded by min(domains, work/CPL) — and is
   comparable across hosts, including single-core CI containers.

   That also makes the run a direct test of the critical-path model: the
   table reports predicted speedup work / max(CPL, work/domains) next to
   the measured one.  Each parallel run's output is checked against the
   sequential interpreter (multiset of lines + final-state digest): the
   expert-synchronized benchmark programs are race-free, so any mismatch
   is an engine bug and aborts the sweep.

   Environment knobs: TDR_BENCH_DOMAINS (default 4), TDR_BENCH_REPEAT
   (default 1), TDR_BENCH_JSON (default speedup.json; "-" disables). *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> default)
  | None -> default

let target_s = 0.4

type row = {
  name : string;
  work : int;
  cpl : int;
  pace_ns : int;
  predicted : float;
  seq_s : float;
  par_s : float;
  speedup : float;
  n_tasks : int;
  n_steals : int;
}

let measure ~domains ~repeat (b : Benchsuite.Bench.t) : row =
  let prog = Benchsuite.Bench.repair_program b in
  let seq = Rt.Interp.run prog in
  let cpl = Sdpst.Analysis.critical_path_length seq.tree in
  let pace_ns =
    max 1 (int_of_float (target_s *. 1e9 /. float_of_int (max 1 seq.work)))
  in
  let ref_lines = Par.Validate.sorted_lines seq.output in
  let ref_digest = Rt.Value.digest_globals seq.globals in
  let run n =
    let r =
      Par.Engine.run ~pace_ns ~mode:(Par.Engine.Domains { n; seed = 0 }) prog
    in
    if Par.Validate.sorted_lines r.output <> ref_lines
       || r.digest <> ref_digest
    then
      failwith
        (Fmt.str "speedup: %s diverged from the sequential semantics at %d \
                  domain(s) — engine bug" b.name n);
    r
  in
  (* pacing makes runs self-similar, so no warmup; repeat>1 takes the
     fastest (least-preempted) run of each side *)
  let r1, seq_s = Clock.time_run ~warmup:0 ~repeat (fun () -> run 1) in
  ignore r1;
  let rp, par_s = Clock.time_run ~warmup:0 ~repeat (fun () -> run domains) in
  let predicted =
    let w = float_of_int seq.work and c = float_of_int (max 1 cpl) in
    w /. Float.max c (w /. float_of_int domains)
  in
  let n_steals =
    match rp.stats.Par.Engine.sched with
    | Par.Engine.Domains_stats { n_steals; _ } -> n_steals
    | Par.Engine.Fuzz_stats _ -> assert false (* run is Domains-mode only *)
  in
  {
    name = b.name;
    work = seq.work;
    cpl;
    pace_ns;
    predicted;
    seq_s;
    par_s;
    speedup = seq_s /. par_s;
    n_tasks = rp.stats.Par.Engine.n_tasks;
    n_steals;
  }

let json_of_rows ~domains ~repeat rows =
  let buf = Buffer.create 1024 in
  let row_json (r : row) =
    Fmt.str
      "    {\"name\": %S, \"work\": %d, \"cpl\": %d, \"pace_ns\": %d, \
       \"predicted_speedup\": %.3f, \"seq_s\": %.4f, \"par_s\": %.4f, \
       \"speedup\": %.3f, \"n_tasks\": %d, \"n_steals\": %d}"
      r.name r.work r.cpl r.pace_ns r.predicted r.seq_s r.par_s r.speedup
      r.n_tasks r.n_steals
  in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Fmt.str "  \"domains\": %d,\n" domains);
  Buffer.add_string buf
    (Fmt.str "  \"recommended_domains\": %d,\n"
       (Domain.recommended_domain_count ()));
  Buffer.add_string buf (Fmt.str "  \"pace_target_s\": %.3f,\n" target_s);
  Buffer.add_string buf (Fmt.str "  \"repeat\": %d,\n" repeat);
  Buffer.add_string buf "  \"rows\": [\n";
  Buffer.add_string buf (String.concat ",\n" (List.map row_json rows));
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let run () =
  let domains = env_int "TDR_BENCH_DOMAINS" 4 in
  let repeat = env_int "TDR_BENCH_REPEAT" 1 in
  Fmt.pr
    "== parallel speedup: %d domain(s), paced to ~%.1fs sequential ==@."
    domains target_s;
  Fmt.pr "%-14s %10s %8s %10s %8s %8s %9s %10s@." "benchmark" "work" "CPL"
    "predicted" "seq(s)" "par(s)" "speedup" "steals";
  let rows =
    List.map
      (fun b ->
        let r = measure ~domains ~repeat b in
        Fmt.pr "%-14s %10d %8d %9.2fx %8.3f %8.3f %8.2fx %10d@." r.name
          r.work r.cpl r.predicted r.seq_s r.par_s r.speedup r.n_steals;
        r)
      Benchsuite.Suite.all
  in
  let above =
    List.length (List.filter (fun r -> r.speedup > 1.5) rows)
  in
  Fmt.pr "%d of %d benchmark(s) above 1.5x at %d domain(s)@." above
    (List.length rows) domains;
  match Sys.getenv_opt "TDR_BENCH_JSON" with
  | Some "-" -> ()
  | path_opt ->
      let path = Option.value ~default:"speedup.json" path_opt in
      let oc = open_out path in
      output_string oc (json_of_rows ~domains ~repeat rows);
      close_out oc;
      Fmt.pr "[speedup data written to %s]@." path
