(* `bench strategies`: repair-strategy tournament comparison — for each
   suite program, run every repair strategy (finish insertion, isolated
   sections, async elision, loop chunking) through
   Repair.Strategy.run `Tournament and compare the candidates on the
   critical-path simulator (Compgraph.Score).

   The suite is chosen so the strategies differentiate:

     - fib      — Figure 8 fib: a missing join.  Finish insertion
                  restores it and keeps the recursive parallelism; no
                  other strategy can beat it.
     - reduce   — sibling reduction into sum[0] after a heavy local
                  call.  Finish insertion can only serialize the loop;
                  wrapping the accumulation in [isolated] keeps the
                  heavy calls parallel and wins.
     - series   — checksum accumulation (same shape, wider loop,
                  different work profile); [isolated] wins again.
     - stencil  — stride-8 stencil where the racing statement contains
                  a user call, so [isolated] is inapplicable; an
                  8-iteration chunk boundary separates every
                  conflicting pair and [chunk] wins.

   Per row the table reports the original (racy) execution's
   parallelism, each strategy's CPL (or why it produced nothing), the
   tournament winner and the parallelism retained by the winning repair
   (winner parallelism / original parallelism).

   Assertions, aborting rather than printing a corrupt table:

     - every winner is verified race-free and its CPL is never worse
       than finish insertion's (the ISSUE acceptance invariant);
     - at least TDR_BENCH_MIN_NONFINISH rows (default 2) select a
       non-finish winner — the tournament must demonstrably beat the
       greedy baseline somewhere, not just tie it;
     - every winner retains at least TDR_BENCH_MIN_RETAINED (default
       0.15, 0 disables) of the original parallelism.

   Environment knobs: TDR_BENCH_STRATEGIES_SUITE (comma-separated row
   names), TDR_BENCH_STRATEGIES_JSON (default BENCH_strategies.json;
   "-" disables), TDR_BENCH_MIN_RETAINED, TDR_BENCH_MIN_NONFINISH.
   The quick variant (`bench strategies-quick`, @ci) shrinks the heavy
   inner loops ~4x and writes JSON only when TDR_BENCH_STRATEGIES_JSON
   is set explicitly; all assertions stay on. *)

module Strategy = Repair.Strategy
module Score = Compgraph.Score

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> default)
  | None -> default

let env_float name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match float_of_string_opt s with Some f -> f | None -> default)
  | None -> default

(* ------------------------------------------------------------------ *)
(* Suite                                                               *)
(* ------------------------------------------------------------------ *)

let fib_src =
  {|
def fib(ret: int[], reti: int, n: int) {
  if (n < 2) { ret[reti] = n; return; }
  val x: int[] = new int[1];
  val y: int[] = new int[1];
  async fib(x, 0, n - 1);
  async fib(y, 0, n - 2);
  ret[reti] = x[0] + y[0];
}
def main() {
  val r: int[] = new int[1];
  async fib(r, 0, 8);
  print(r[0]);
}
|}

let reduce_src ~reps =
  Fmt.str
    {|
def heavy(n: int): int {
  var acc: int = 0;
  for (j = 0 to %d) { acc = acc + n + j; }
  return acc;
}
def main() {
  val sum: int[] = new int[1];
  finish {
    for (i = 0 to 7) {
      async {
        val v: int = heavy(i);
        sum[0] = sum[0] + v;
      }
    }
  }
  print(sum[0]);
}
|}
    reps

let series_src ~reps =
  Fmt.str
    {|
def poly(n: int): int {
  var acc: int = 1;
  for (j = 0 to %d) { acc = acc + n + j; }
  return acc;
}
def main() {
  val check: int[] = new int[1];
  finish {
    for (i = 0 to 11) {
      async {
        val t: int = poly(i);
        check[0] = check[0] + t;
      }
    }
  }
  print(check[0]);
}
|}
    reps

let stencil_src ~reps =
  Fmt.str
    {|
def heavy(n: int): int {
  var acc: int = 0;
  for (j = 0 to %d) { acc = acc + n + j; }
  return acc;
}
def main() {
  val a: int[] = new int[16];
  finish {
    for (i = 0 to 15) {
      async {
        if (i < 8) { a[i] = heavy(a[i + 8]); }
        else { a[i] = heavy(i); }
      }
    }
  }
  var s: int = 0;
  for (k = 0 to 15) { s = s + a[k]; }
  print(s);
}
|}
    reps

let suite ~quick () =
  let r full = if quick then full / 4 else full in
  let all =
    [
      ("fib", fib_src);
      ("reduce", reduce_src ~reps:(r 255));
      ("series", series_src ~reps:(r 127));
      ("stencil", stencil_src ~reps:(r 127));
    ]
  in
  match Sys.getenv_opt "TDR_BENCH_STRATEGIES_SUITE" with
  | None | Some "" -> all
  | Some spec -> (
      let names = String.split_on_char ',' spec in
      match List.filter (fun (n, _) -> List.mem n names) all with
      | [] ->
          failwith
            (Fmt.str
               "strategies bench: TDR_BENCH_STRATEGIES_SUITE=%S matches no \
                row (have: %s)"
               spec
               (String.concat ", " (List.map fst all)))
      | rows -> rows)

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)
(* ------------------------------------------------------------------ *)

type row = {
  name : string;
  original : Score.t;  (** score of the racy execution, before repair *)
  outcome : Strategy.outcome;
  retained : float;  (** winner parallelism / original parallelism *)
  tournament_s : float;
}

let measure (name, src) =
  let prog = Mhj.Front.compile src in
  let original = Score.of_tree (Rt.Interp.run prog).Rt.Interp.tree in
  let t0 = Clock.now_ns () in
  let outcome = Strategy.run `Tournament prog in
  let tournament_s = Clock.elapsed_s t0 in
  let winner_par =
    match outcome.Strategy.winner.score with
    | Some s -> s.Score.parallelism
    | None ->
        failwith
          (Fmt.str "strategies bench: %s: winner has no score" name)
  in
  let retained =
    if original.Score.parallelism > 0. then
      winner_par /. original.Score.parallelism
    else 1.
  in
  { name; original; outcome; retained; tournament_s }

let candidate r kind =
  List.find
    (fun (c : Strategy.candidate) -> c.kind = kind)
    r.outcome.Strategy.candidates

let cpl_cell (c : Strategy.candidate) =
  if c.verified then
    match c.score with
    | Some s -> Fmt.str "%d" s.Score.cpl
    | None -> "?"
  else "-"

(* ------------------------------------------------------------------ *)
(* Assertions                                                          *)
(* ------------------------------------------------------------------ *)

let assert_rows rows =
  List.iter
    (fun r ->
      let w = r.outcome.Strategy.winner in
      if not w.Strategy.verified then
        failwith
          (Fmt.str "strategies bench: %s: winner %s is not verified" r.name
             (Strategy.kind_name w.Strategy.kind));
      let fin = candidate r Strategy.Finish in
      match (w.Strategy.score, fin.Strategy.score) with
      | Some ws, Some fs when fin.Strategy.verified ->
          if ws.Score.cpl > fs.Score.cpl then
            failwith
              (Fmt.str
                 "strategies bench: %s: winner %s cpl %d is worse than \
                  finish cpl %d"
                 r.name
                 (Strategy.kind_name w.Strategy.kind)
                 ws.Score.cpl fs.Score.cpl)
      | _ -> ())
    rows;
  let nonfinish =
    List.length
      (List.filter
         (fun r -> r.outcome.Strategy.winner.Strategy.kind <> Strategy.Finish)
         rows)
  in
  let min_nonfinish = env_int "TDR_BENCH_MIN_NONFINISH" 2 in
  if List.length rows >= 3 && nonfinish < min_nonfinish then
    failwith
      (Fmt.str
         "strategies bench: only %d rows select a non-finish winner (need \
          %d; TDR_BENCH_MIN_NONFINISH)"
         nonfinish min_nonfinish);
  let floor = env_float "TDR_BENCH_MIN_RETAINED" 0.15 in
  List.iter
    (fun r ->
      if floor > 0. && r.retained < floor then
        failwith
          (Fmt.str
             "strategies bench: %s: winner retains %.3f of the original \
              parallelism, below the %.3f floor (TDR_BENCH_MIN_RETAINED)"
             r.name r.retained floor))
    rows;
  nonfinish

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let score_json (s : Score.t) =
  Fmt.str
    "{\"work\": %d, \"cpl\": %d, \"makespan\": %d, \"parallelism\": %.3f}"
    s.Score.work s.Score.cpl s.Score.makespan s.Score.parallelism

let candidate_json (c : Strategy.candidate) =
  let score =
    match c.Strategy.score with Some s -> score_json s | None -> "null"
  in
  Fmt.str
    "      {\"kind\": %S, \"produced\": %b, \"verified\": %b, \"rounds\": \
     %d, \"score\": %s}"
    (Strategy.kind_name c.Strategy.kind)
    (c.Strategy.program <> None)
    c.Strategy.verified c.Strategy.rounds score

let row_json r =
  Fmt.str
    "    {\n\
    \      \"name\": %S,\n\
    \      \"winner\": %S,\n\
    \      \"retained\": %.3f,\n\
    \      \"tournament_s\": %.3f,\n\
    \      \"original\": %s,\n\
    \      \"candidates\": [\n\
     %s\n\
    \      ]\n\
    \    }"
    r.name
    (Strategy.kind_name r.outcome.Strategy.winner.Strategy.kind)
    r.retained r.tournament_s (score_json r.original)
    (String.concat ",\n"
       (List.map candidate_json r.outcome.Strategy.candidates))

let json_of_rows ~quick ~nonfinish rows =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"bench\": \"strategies\",\n";
  Buffer.add_string buf (Fmt.str "  \"quick\": %b,\n" quick);
  Buffer.add_string buf
    (Fmt.str "  \"min_retained\": %.3f,\n"
       (env_float "TDR_BENCH_MIN_RETAINED" 0.15));
  Buffer.add_string buf
    (Fmt.str "  \"nonfinish_winners\": %d,\n" nonfinish);
  Buffer.add_string buf "  \"rows\": [\n";
  Buffer.add_string buf (String.concat ",\n" (List.map row_json rows));
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let sweep ~quick () =
  Fmt.pr "== strategies: repair-strategy tournament on the CPL simulator ==@.";
  Fmt.pr
    "(cpl = critical path of the verified candidate; '-' = strategy \
     inapplicable or unverified; retained = winner parallelism / original \
     parallelism)@.";
  Fmt.pr "%-9s %9s %8s %8s %8s %8s  %-9s %9s@." "program" "orig-par"
    "fin-cpl" "iso-cpl" "eli-cpl" "chk-cpl" "winner" "retained";
  let rows =
    List.map
      (fun entry ->
        let r = measure entry in
        Fmt.pr "%-9s %9.2f %8s %8s %8s %8s  %-9s %9.3f@." r.name
          r.original.Score.parallelism
          (cpl_cell (candidate r Strategy.Finish))
          (cpl_cell (candidate r Strategy.Isolated))
          (cpl_cell (candidate r Strategy.Elide))
          (cpl_cell (candidate r Strategy.Chunk))
          (Strategy.kind_name r.outcome.Strategy.winner.Strategy.kind)
          r.retained;
        r)
      (suite ~quick ())
  in
  let nonfinish = assert_rows rows in
  Fmt.pr
    "every winner race-free and never worse than finish insertion; %d of \
     %d rows select a non-finish winner@."
    nonfinish (List.length rows);
  let json_dest =
    match Sys.getenv_opt "TDR_BENCH_STRATEGIES_JSON" with
    | Some "-" -> None
    | Some path -> Some path
    | None -> if quick then None else Some "BENCH_strategies.json"
  in
  match json_dest with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (json_of_rows ~quick ~nonfinish rows);
      close_out oc;
      Fmt.pr "[strategies data written to %s]@." path

let run () = sweep ~quick:false ()

let run_quick () = sweep ~quick:true ()
