(* Synthetic dependence graphs used by the table printers and the
   Bechamel micro-benchmarks. *)

(* The paper's Figure 3 example: asyncs A..F with times 500/10/10/400/600/
   500 and dependences B->D, A->F, D->F. *)
let figure3 () : Repair.Depgraph.t =
  let times = [| 500; 10; 10; 400; 600; 500 |] in
  let tree = Sdpst.Node.create_tree ~main_bid:0 in
  let root = tree.Sdpst.Node.root in
  let steps =
    Array.mapi
      (fun i t ->
        let a =
          Sdpst.Node.new_child tree ~parent:root ~kind:Sdpst.Node.Async
            ~origin_bid:0 ~origin_idx:i ()
        in
        let s =
          Sdpst.Node.new_child tree ~parent:a ~kind:Sdpst.Node.Step
            ~origin_bid:(100 + i) ~origin_idx:0 ()
        in
        s.Sdpst.Node.cost <- t;
        s)
      times
  in
  let races =
    List.map
      (fun (i, j) ->
        Espbags.Race.make ~src:steps.(i) ~sink:steps.(j)
          ~addr:(Rt.Addr.Global "dep") ~kind:Espbags.Race.Write_read)
      [ (1, 3); (0, 5); (3, 5) ]
  in
  let span, _ = Sdpst.Analysis.span_memo () in
  Repair.Depgraph.build ~coalesce:false ~span root races

(* A larger random placement problem, for timing the O(n^3 d) DP. *)
let random_graph ~seed ~n : Repair.Depgraph.t =
  let rng = Tdrutil.Prng.create ~seed in
  let tree = Sdpst.Node.create_tree ~main_bid:0 in
  let root = tree.Sdpst.Node.root in
  let steps =
    Array.init n (fun i ->
        let is_async = Tdrutil.Prng.int rng 3 < 2 in
        let kind = if is_async then Sdpst.Node.Async else Sdpst.Node.Step in
        let c =
          Sdpst.Node.new_child tree ~parent:root ~kind ~origin_bid:0
            ~origin_idx:i ()
        in
        if is_async then begin
          let s =
            Sdpst.Node.new_child tree ~parent:c ~kind:Sdpst.Node.Step
              ~origin_bid:(1000 + i) ~origin_idx:0 ()
          in
          s.Sdpst.Node.cost <- 1 + Tdrutil.Prng.int rng 100;
          s
        end
        else begin
          c.Sdpst.Node.cost <- 1 + Tdrutil.Prng.int rng 100;
          c
        end)
  in
  let races = ref [] in
  for _ = 1 to n do
    let i = Tdrutil.Prng.int rng (n - 1) in
    let j = i + 1 + Tdrutil.Prng.int rng (n - i - 1) in
    races :=
      Espbags.Race.make ~src:steps.(i) ~sink:steps.(j)
        ~addr:(Rt.Addr.Global "dep") ~kind:Espbags.Race.Write_read
      :: !races
  done;
  let span, _ = Sdpst.Analysis.span_memo () in
  Repair.Depgraph.build ~coalesce:false ~span root !races
