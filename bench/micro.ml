(* Bechamel micro-benchmarks: one Test.make per paper table/figure, timing
   the computation that regenerates it.  [run_and_print] executes the
   whole suite and prints one OLS time-per-run estimate per test. *)

open Bechamel
open Toolkit

let fib_src = Benchsuite.Fibonacci.source ~n:10

let quicksort_src = Benchsuite.Quicksort.source ~n:200 ~seed:9

let compile_stripped src =
  Mhj.Transform.strip_finishes (Mhj.Front.compile src)

(* table 2: detection + S-DPST construction (MRW, per benchmark kind) *)
let test_table2_detect =
  let prog = compile_stripped fib_src in
  Test.make ~name:"table2/mrw-detect-fib"
    (Staged.stage (fun () ->
         ignore (Espbags.Detector.detect Espbags.Detector.Mrw prog)))

let test_table2_repair =
  let prog = compile_stripped quicksort_src in
  Test.make ~name:"table2/repair-quicksort"
    (Staged.stage (fun () -> ignore (Repair.Driver.repair prog)))

(* table 3: SRW vs MRW detection cost *)
let test_table3_srw =
  let prog = compile_stripped quicksort_src in
  Test.make ~name:"table3/srw-detect-quicksort"
    (Staged.stage (fun () ->
         ignore (Espbags.Detector.detect Espbags.Detector.Srw prog)))

let test_table3_mrw =
  let prog = compile_stripped quicksort_src in
  Test.make ~name:"table3/mrw-detect-quicksort"
    (Staged.stage (fun () ->
         ignore (Espbags.Detector.detect Espbags.Detector.Mrw prog)))

(* table 4 reduces to the same detector runs as table 3; time the race
   bookkeeping itself on a read/write-heavy program instead *)
let test_table4_bookkeeping =
  let prog = compile_stripped (Benchsuite.Mergesort.source ~n:64 ~seed:1) in
  Test.make ~name:"table4/mrw-detect-mergesort"
    (Staged.stage (fun () ->
         ignore (Espbags.Detector.detect Espbags.Detector.Mrw prog)))

(* figures 3/4: the dynamic-programming placement *)
let test_fig3_dp =
  let g = Bench_graphs.figure3 () in
  Test.make ~name:"fig3/dp-solve-6"
    (Staged.stage (fun () -> ignore (Repair.Dp_place.solve g)))

let test_fig3_dp_large =
  let g = Bench_graphs.random_graph ~seed:17 ~n:64 in
  Test.make ~name:"fig3/dp-solve-64"
    (Staged.stage (fun () -> ignore (Repair.Dp_place.solve g)))

(* figure 16: computation-graph construction + greedy scheduling *)
let test_fig16_sched =
  let res = Rt.Interp.run (Mhj.Front.compile fib_src) in
  let g = Compgraph.Graph.of_sdpst res.tree in
  Test.make ~name:"fig16/schedule-fib-12procs"
    (Staged.stage (fun () -> ignore (Compgraph.Sched.makespan ~procs:12 g)))

let test_fig16_graph =
  let res = Rt.Interp.run (Mhj.Front.compile fib_src) in
  Test.make ~name:"fig16/compgraph-of-sdpst-fib"
    (Staged.stage (fun () -> ignore (Compgraph.Graph.of_sdpst res.tree)))

(* §7.4: grading one student submission *)
let test_students_grade =
  let sub = List.hd (Benchsuite.Students.submissions ~n:32 ()) in
  Test.make ~name:"students/grade-one"
    (Staged.stage (fun () -> ignore (Benchsuite.Students.grade sub)))

(* table 1 is an inventory; time the front end on the largest source *)
let test_table1_frontend =
  let src = (List.hd Benchsuite.Suite.all).Benchsuite.Bench.repair_src in
  Test.make ~name:"table1/compile-fibonacci"
    (Staged.stage (fun () -> ignore (Mhj.Front.compile src)))

(* parallel backend: one deterministic fuzzed schedule of the same fib
   program the sequential interpreter benchmarks run (compare against
   table2/mrw-detect-fib for scheduler + snapshot overhead) *)
let test_par_fuzz =
  let prog = Mhj.Front.compile fib_src in
  Test.make ~name:"par/fuzz-exec-fib"
    (Staged.stage (fun () ->
         ignore (Par.Engine.run ~mode:(Par.Engine.Fuzz { seed = 1 }) prog)))

let all_tests =
  Test.make_grouped ~name:"tdrace"
    [
      test_table1_frontend;
      test_table2_detect;
      test_table2_repair;
      test_table3_srw;
      test_table3_mrw;
      test_table4_bookkeeping;
      test_fig3_dp;
      test_fig3_dp_large;
      test_fig16_graph;
      test_fig16_sched;
      test_students_grade;
      test_par_fuzz;
    ]

let run_and_print () =
  Fmt.pr "@.Bechamel micro-benchmarks (one per table/figure)@.";
  Fmt.pr "%s@." (String.make 72 '-');
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.8) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances all_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] in
  List.iter
    (fun name ->
      let result = Hashtbl.find results name in
      match Analyze.OLS.estimates result with
      | Some [ t ] -> Fmt.pr "%-36s %12.1f ns/run@." name t
      | _ -> Fmt.pr "%-36s (no estimate)@." name)
    (List.sort compare names)
