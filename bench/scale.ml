(* `bench scale`: million-access detection — throughput and memory
   bounds of the slab-chunked / epoch-GC'd / spill-bounded detectors
   (DESIGN.md §15) on the closed-form scale workloads
   (Benchsuite.Progen.scale_presets: wide grid, deep task chain,
   hot-address skew, phased finishes, sparse id space).

   For every workload x backend (ESP-bags, vector clocks; MRW — the
   flavour whose shadow actually grows), the sweep times the same
   deterministic execution twice: with the default slab-chunked shadow
   layout and with the Monolithic doubling-array layout (the pre-scale
   baseline).  Per row it records detection throughput (accesses per
   second of detection time = run minus uninstrumented baseline), the
   GC-heap high-water mark of each layout's run (Obs.Rusage.watermark —
   per-run, unlike process RSS, which is monotone), allocated shadow
   slabs/words, entries retired by epoch GC, and clocks freed (vclock).
   The process-wide peak RSS (getrusage) is reported once in the
   summary.

   Report invariance is asserted, not assumed: per workload the race
   records of {chunked, monolithic} x {ESP-bags, vclock} and of a
   chunked ESP-bags run with a deliberately tiny spill cap (forcing the
   disk-overflow path) must all be byte-identical to the unbounded seed
   oracle (Espbags.Reference).  Any mismatch aborts rather than print a
   corrupt table.

   The sparse workload is the layout comparison row: its interned id
   space is ~17x larger than its touched set, so the monolithic shadow's
   words scale with the id span while the chunked shadow's scale with
   the touched chunks — the sweep asserts chunked shadow words strictly
   below monolithic's there (sublinear growth in the untouched span).

   Environment knobs (mirroring `bench detector`): TDR_BENCH_REPEAT
   (default 2), TDR_BENCH_SCALE_SUITE (comma-separated workload names),
   TDR_BENCH_SCALE_JSON (default BENCH_scale.json; "-" disables),
   TDR_BENCH_MIN_ACCESSES_PER_S (throughput floor over the aggregate;
   default 20000, 0 disables), TDR_BENCH_MAX_RSS_MB (process peak-RSS
   ceiling; default 0 = disabled).  The quick variant (`bench
   scale-quick`, @ci) shrinks every workload ~16x (~10^5 accesses),
   does a single run per configuration and writes JSON only when
   TDR_BENCH_SCALE_JSON is set explicitly, keeping all assertions
   including the layout-comparison row and the spill path. *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> default)
  | None -> default

let env_float name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match float_of_string_opt s with Some f -> f | None -> default)
  | None -> default

(* Quick variants: every dimension cut so each workload lands near 10^5
   accesses; shapes and ratios preserved. *)
let quick_config (cfg : Benchsuite.Progen.scale_config) :
    Benchsuite.Progen.scale_config =
  let shape =
    match cfg.shape with
    | Benchsuite.Progen.Grid { tasks; reps } ->
        Benchsuite.Progen.Grid { tasks = tasks / 4; reps = reps / 4 }
    | Deep { depth; reps } -> Deep { depth = depth / 4; reps = reps / 4 }
    | Hot { tasks; reps; hot } ->
        Hot { tasks = tasks / 4; reps = max 1 (reps / 4); hot = max 1 (hot / 4) }
    | Phased { phases; tasks; reps; hot } ->
        Phased
          {
            phases = max 2 (phases / 2);
            tasks = tasks / 4;
            reps = max 1 (reps / 2);
            hot = max 1 (hot / 4);
          }
    | Sparse { pad_arrays; pad_len; tasks; reps } ->
        Sparse { pad_arrays; pad_len = pad_len / 4; tasks = tasks / 4; reps = reps / 4 }
  in
  { cfg with shape }

let workloads ~quick () =
  let all =
    if quick then
      List.map
        (fun (n, c) -> (n, quick_config c))
        Benchsuite.Progen.scale_presets
    else Benchsuite.Progen.scale_presets
  in
  match Sys.getenv_opt "TDR_BENCH_SCALE_SUITE" with
  | None | Some "" -> all
  | Some spec -> (
      let names = String.split_on_char ',' spec in
      match List.filter (fun (n, _) -> List.mem n names) all with
      | [] ->
          failwith
            (Fmt.str
               "scale bench: TDR_BENCH_SCALE_SUITE=%S matches no workload \
                (have: %s)"
               spec
               (String.concat ", " (List.map fst all)))
      | ws -> ws)

type mem = {
  hw_words : int;  (** GC-heap high-water mark of the run *)
  shadow_slabs : int;
  shadow_words : int;
  gc_retired : int;
  clocks_freed : int;  (** vclock only; 0 for ESP-bags *)
}

type row = {
  workload : string;
  backend : string;  (** "espbags" | "vclock" *)
  accesses : int;
  races : int;
  nop_s : float;
  chunked_s : float;
  mono_s : float;
  chunked : mem;
  mono : mem;
  spilled : int;  (** records through the forced-spill identity run *)
}

let det_time run nop = Float.max (run -. nop) 1e-6

let measurable run nop = run -. nop >= Float.max 3e-4 (0.05 *. nop)

let aps r = float_of_int r.accesses /. det_time r.chunked_s r.nop_s

let mono_aps r = float_of_int r.accesses /. det_time r.mono_s r.nop_s

let row_measurable r = measurable r.chunked_s r.nop_s

let identical workload what a b =
  if a <> b then
    failwith
      (Fmt.str
         "scale bench: %s: %s race records differ (%d vs %d) — memory \
          bounds changed the report"
         workload what (List.length a) (List.length b))

(* One measured detection run: time, heap high-water mark, and detector
   gauges, under a [Gc.full_major]-cleaned heap. *)
let run_one f =
  Gc.full_major ();
  let wm = Obs.Rusage.watermark () in
  let r, s = Clock.time f in
  let hw = Obs.Rusage.dispose wm in
  (r, s, hw)

let stat det key =
  match List.assoc_opt key det with Some v -> v | None -> 0

let measure ~repeat ~spill_dir (name, cfg) : row list =
  let src = Benchsuite.Progen.generate_scaled cfg in
  let prog = Mhj.Front.compile src in
  let nop_s = ref infinity in
  let keep_min cell s = if s < !cell then cell := s in
  for _ = 1 to repeat do
    let _, s, _ = run_one (fun () -> ignore (Rt.Interp.run prog)) in
    keep_min nop_s s
  done;
  let nop_s = !nop_s in
  (* unbounded oracle: the seed implementation, hashtable bags and boxed
     shadow — no slabs, no GC, no spill *)
  let oracle =
    Espbags.Race.exact_sigs
      (Espbags.Reference.races
         (fst (Espbags.Reference.detect Espbags.Detector.Mrw prog)))
  in
  let eb layout () =
    fst (Espbags.Detector.detect ~layout Espbags.Detector.Mrw prog)
  in
  let vc layout () = fst (Vclock.Seq.detect ~layout Vclock.Seq.Mrw prog) in
  let time_runs f =
    let best = ref infinity and last = ref None and hw = ref 0 in
    for _ = 1 to repeat do
      let det, s, h = run_one f in
      keep_min best s;
      if h > !hw then hw := h;
      last := Some det
    done;
    (Option.get !last, !best, !hw)
  in
  let backend bname ~detect ~races ~stats ~spill_races : row =
    let chunked_det, chunked_s, chunked_hw =
      time_runs (detect (Tdrutil.Islab.Chunked Tdrutil.Islab.default_chunk))
    in
    let mono_det, mono_s, mono_hw = time_runs (detect Tdrutil.Islab.Monolithic) in
    let csigs = Espbags.Race.exact_sigs (races chunked_det) in
    identical name (bname ^ " chunked vs seed oracle") csigs oracle;
    identical name
      (bname ^ " monolithic vs seed oracle")
      (Espbags.Race.exact_sigs (races mono_det))
      oracle;
    (* force the spill path: a cap far below the race count drains
       r_buf to disk mid-run; the report must survive the round-trip *)
    let spill_path = Filename.concat spill_dir (name ^ "-" ^ bname ^ ".spill") in
    let n_spilled, spill_sigs = spill_races spill_path in
    identical name (bname ^ " spilled vs seed oracle") spill_sigs oracle;
    if List.length oracle > 4 && n_spilled = 0 then
      failwith
        (Fmt.str "scale bench: %s: %s spill run spilled nothing" name bname);
    let mem det hw =
      let st = stats det in
      {
        hw_words = hw;
        shadow_slabs = stat st "detector.shadow_slabs";
        shadow_words = stat st "detector.shadow_words";
        gc_retired = stat st "detector.gc_retired";
        clocks_freed = stat st "detector.clocks_freed";
      }
    in
    {
      workload = name;
      backend = bname;
      accesses = stat (stats chunked_det) "detector.accesses";
      races = List.length csigs;
      nop_s;
      chunked_s;
      mono_s;
      chunked = mem chunked_det chunked_hw;
      mono = mem mono_det mono_hw;
      spilled = n_spilled;
    }
  in
  let eb_row =
    backend "espbags" ~detect:(fun l -> eb l) ~races:Espbags.Detector.races
      ~stats:Espbags.Detector.stats ~spill_races:(fun path ->
        let det, _ =
          Espbags.Detector.detect
            ~spill:(Espbags.Spill.config ~cap:2 path)
            Espbags.Detector.Mrw prog
        in
        ( Espbags.Detector.n_spilled det,
          Espbags.Race.exact_sigs (Espbags.Detector.races det) ))
  in
  let vc_row =
    backend "vclock" ~detect:(fun l -> vc l) ~races:Vclock.Seq.races
      ~stats:Vclock.Seq.stats ~spill_races:(fun path ->
        let det, _ =
          Vclock.Seq.detect
            ~spill:(Espbags.Spill.config ~cap:2 path)
            Vclock.Seq.Mrw prog
        in
        (Vclock.Seq.n_spilled det, Espbags.Race.exact_sigs (Vclock.Seq.races det)))
  in
  [ eb_row; vc_row ]

(* JSON has no NaN/Inf; aggregates over an empty or unmeasurable row set
   degrade to 0 instead. *)
let safe f = if Float.is_finite f then f else 0.

let json_of_rows ~repeat ~quick rows =
  let buf = Buffer.create 4096 in
  let row_json r =
    Fmt.str
      "    {\"workload\": %S, \"backend\": %S, \"accesses\": %d, \"races\": \
       %d, \"nop_s\": %.6f, \"chunked_s\": %.6f, \"mono_s\": %.6f, \
       \"det_accesses_per_s\": %.0f, \"mono_det_accesses_per_s\": %.0f, \
       \"chunked_hw_words\": %d, \"mono_hw_words\": %d, \
       \"chunked_shadow_slabs\": %d, \"chunked_shadow_words\": %d, \
       \"mono_shadow_words\": %d, \"gc_retired\": %d, \"clocks_freed\": %d, \
       \"spilled_races\": %d, \"measurable\": %b}"
      r.workload r.backend r.accesses r.races r.nop_s r.chunked_s r.mono_s
      (safe (aps r)) (safe (mono_aps r)) r.chunked.hw_words r.mono.hw_words
      r.chunked.shadow_slabs r.chunked.shadow_words r.mono.shadow_words
      r.chunked.gc_retired r.chunked.clocks_freed r.spilled (row_measurable r)
  in
  let mrows = List.filter row_measurable rows in
  let total_over rs f = List.fold_left (fun acc r -> acc +. f r) 0. rs in
  let agg_aps =
    safe
      (total_over mrows (fun r -> float_of_int r.accesses)
      /. total_over mrows (fun r -> det_time r.chunked_s r.nop_s))
  in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Fmt.str "  \"repeat\": %d,\n" repeat);
  Buffer.add_string buf (Fmt.str "  \"quick\": %b,\n" quick);
  Buffer.add_string buf
    (Fmt.str "  \"measured_rows\": %d,\n" (List.length mrows));
  Buffer.add_string buf
    (Fmt.str "  \"total_accesses\": %.0f,\n"
       (total_over rows (fun r -> float_of_int r.accesses)));
  Buffer.add_string buf
    (Fmt.str "  \"aggregate_det_accesses_per_s\": %.0f,\n" agg_aps);
  Buffer.add_string buf
    (Fmt.str "  \"peak_rss_kb\": %d,\n" (Obs.Rusage.peak_rss_kb ()));
  Buffer.add_string buf "  \"rows\": [\n";
  Buffer.add_string buf (String.concat ",\n" (List.map row_json rows));
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let sweep ~quick () =
  let repeat = max 1 (if quick then 1 else env_int "TDR_BENCH_REPEAT" 2) in
  let spill_dir = Filename.temp_file "tdr-scale" "" in
  Sys.remove spill_dir;
  Unix.mkdir spill_dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat spill_dir f) with _ -> ())
        (try Sys.readdir spill_dir with _ -> [||]);
      try Unix.rmdir spill_dir with _ -> ())
    (fun () ->
      Fmt.pr "== scale: memory-bounded detection at ~10^%d accesses ==@."
        (if quick then 5 else 6);
      Fmt.pr
        "(aps = accesses/sec of detection time; hw = GC-heap high-water \
         Mwords of the run, chunked vs monolithic shadow layout)@.";
      Fmt.pr "%-11s %-8s %10s %6s %9s %9s %9s %8s %8s %9s %9s@." "workload"
        "backend" "accesses" "races" "nop(ms)" "chk(ms)" "mono(ms)" "chk-hw"
        "mono-hw" "retired" "aps";
      let rows =
        List.concat_map
          (fun w ->
            let rs = measure ~repeat ~spill_dir w in
            List.iter
              (fun r ->
                Fmt.pr
                  "%-11s %-8s %10d %6d %9.1f %9.1f %9.1f %7.1fM %7.1fM %9d \
                   %9.0f@."
                  r.workload r.backend r.accesses r.races (1e3 *. r.nop_s)
                  (1e3 *. r.chunked_s) (1e3 *. r.mono_s)
                  (float_of_int r.chunked.hw_words /. 1e6)
                  (float_of_int r.mono.hw_words /. 1e6)
                  r.chunked.gc_retired (safe (aps r)))
              rs;
            rs)
          (workloads ~quick ())
      in
      (* the sparse workload is the layout-comparison row: its id span is
         ~17x its touched set, so the chunked table must undercut the
         monolithic doubling array.  Strict-less, not a fixed ratio: both
         layouts carry identical per-location access-list words (they
         scale with the touched set), so the assertable difference is
         exactly the table part — touched chunks vs the whole span. *)
      List.iter
        (fun r ->
          if
            String.length r.workload >= 6
            && String.sub r.workload 0 6 = "sparse"
            && r.chunked.shadow_words >= r.mono.shadow_words
          then
            failwith
              (Fmt.str
                 "scale bench: %s/%s: chunked shadow (%d words) is not \
                  sublinear vs monolithic (%d words)"
                 r.workload r.backend r.chunked.shadow_words
                 r.mono.shadow_words))
        rows;
      let mrows = List.filter row_measurable rows in
      let total_over rs f = List.fold_left (fun acc r -> acc +. f r) 0. rs in
      let agg_aps =
        safe
          (total_over mrows (fun r -> float_of_int r.accesses)
          /. total_over mrows (fun r -> det_time r.chunked_s r.nop_s))
      in
      let rss_kb = Obs.Rusage.peak_rss_kb () in
      Fmt.pr
        "reports byte-identical to the unbounded oracle on all %d rows \
         (both layouts + forced spill); aggregate %.0f accesses/s over %d \
         measurable rows; process peak RSS %d MB@."
        (List.length rows) agg_aps (List.length mrows) (rss_kb / 1024);
      (let floor = env_float "TDR_BENCH_MIN_ACCESSES_PER_S" 20_000. in
       if mrows <> [] && floor > 0. && agg_aps < floor then
         failwith
           (Fmt.str
              "scale bench: aggregate %.0f accesses/s is below the %.0f \
               floor (TDR_BENCH_MIN_ACCESSES_PER_S)"
              agg_aps floor));
      (let ceil_mb = env_int "TDR_BENCH_MAX_RSS_MB" 0 in
       if ceil_mb > 0 && rss_kb / 1024 > ceil_mb then
         failwith
           (Fmt.str
              "scale bench: process peak RSS %d MB exceeds the %d MB \
               ceiling (TDR_BENCH_MAX_RSS_MB)"
              (rss_kb / 1024) ceil_mb));
      let json_dest =
        match Sys.getenv_opt "TDR_BENCH_SCALE_JSON" with
        | Some "-" -> None
        | Some path -> Some path
        | None -> if quick then None else Some "BENCH_scale.json"
      in
      match json_dest with
      | None -> ()
      | Some path ->
          let oc = open_out path in
          output_string oc (json_of_rows ~repeat ~quick rows);
          close_out oc;
          Fmt.pr "[scale data written to %s]@." path)

let run () = sweep ~quick:false ()

let run_quick () = sweep ~quick:true ()
