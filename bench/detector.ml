(* `bench detector`: per-access overhead of the race detectors on the
   Table 1 suite (finish-stripped, repair input sizes) — a three-way
   shootout between the seed implementation, the ESP-bags hot path and
   the vector-clock backend.

   For each benchmark the sweep times eight configurations of the same
   deterministic execution: uninstrumented (nop), ESP-bags SRW and MRW,
   MRW with the static prune pre-pass (`--static-prune`,
   Static.Prune.keep_fn), the seed MRW implementation kept in
   Espbags.Reference — hashtable bags, boxed-address shadow, per-access
   allocation — as the "before" side, vector-clock SRW and MRW
   (Vclock.Seq, same packed shadow, concurrency decided by clock
   coverage instead of bags), and one parallel row: the program executed
   for real under Par.Engine with the sharded vector-clock monitor
   (Vclock.Pardet) attached, detection overlapped with execution on
   TDR_BENCH_PAR_DOMAINS domains.

   The headline metric is detection throughput: monitored accesses per
   second of detector work, where detector work is the run's time minus
   the uninstrumented (nop) run of the same program — i.e. the per-access
   cost the detector itself adds.  (Total-run times are also recorded; on
   interpreter-bound programs they dilute any detector change with
   constant interpretation cost.)  The speedup columns are the ratios of
   ESP-bags and vector-clock detection throughput to the seed's.  The
   parallel row is wall-clock only: its schedule is nondeterministic, so
   it is excluded from both the byte-identity assertions and the speedup
   floor.

   The interpreter is deterministic, so S-DPST node ids are stable across
   runs; the sweep asserts the sequential detectors' race reports
   byte-identical (same order, same (src, sink, addr, kind) records —
   Espbags.Race.exact_sigs) to the seed's for both SRW and MRW, the
   pruned run's race multiset identical to the unpruned one, and the
   parallel detector's static race set (sorted static keys) equal to the
   sequential MRW oracle's.  Any mismatch aborts rather than print a
   corrupt table.

   Timing discipline: minimum of TDR_BENCH_REPEAT timed runs (default 5,
   plus a warmup), with a [Gc.full_major] before every configuration so
   one configuration's garbage is not collected on another's clock.

   Environment knobs: TDR_BENCH_REPEAT, TDR_BENCH_PAR_DOMAINS (default
   2), TDR_BENCH_SUITE (comma-separated benchmark names; default all),
   TDR_BENCH_DETECTOR_JSON (default BENCH_detector.json; "-" disables).
   The quick variant (`bench detector-quick`, @ci) does a single run per
   configuration and writes the JSON only when TDR_BENCH_DETECTOR_JSON
   is set explicitly, keeping all the race-set identity assertions. *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> default)
  | None -> default

let env_float name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match float_of_string_opt s with Some f -> f | None -> default)
  | None -> default

let par_domains () = max 1 (env_int "TDR_BENCH_PAR_DOMAINS" 2)

let suite () =
  match Sys.getenv_opt "TDR_BENCH_SUITE" with
  | None | Some "" -> Benchsuite.Suite.all
  | Some spec -> (
      let names = String.split_on_char ',' spec in
      match
        List.filter
          (fun (b : Benchsuite.Bench.t) -> List.mem b.name names)
          Benchsuite.Suite.all
      with
      | [] ->
          failwith
            (Fmt.str
               "detector bench: TDR_BENCH_SUITE=%S matches no benchmark \
                (try 'tdrepair benchmarks')"
               spec)
      | bs -> bs)

type row = {
  name : string;
  accesses : int;
  races : int;
  nop_s : float;
  srw_s : float;
  mrw_s : float;
  analysis_s : float;  (** Static.Prune.make, paid once per program *)
  mrw_pruned_s : float;
  skipped : int;
  ref_srw_s : float;
  ref_mrw_s : float;
  vc_srw_s : float;
  vc_mrw_s : float;
  par_mrw_s : float;
      (** wall-clock of the parallel run with the sharded monitor
          attached; execution and detection overlap, so there is no
          meaningful nop baseline to subtract *)
}

(* Detection time: run minus uninstrumented baseline, floored at 1us so
   clock jitter on a near-free configuration cannot yield a zero or
   negative denominator. *)
let det_time run nop = Float.max (run -. nop) 1e-6

(* A detection time below this floor (both absolute and relative to the
   interpreter baseline) is clock noise, not measurement: on
   interpreter-bound programs the run-to-run variance of the baseline
   itself exceeds the detector's contribution.  Such rows are printed and
   recorded but excluded from the summary speedups. *)
let measurable run nop = run -. nop >= Float.max 3e-4 (0.05 *. nop)

let mrw_aps r = float_of_int r.accesses /. det_time r.mrw_s r.nop_s

let vc_mrw_aps r = float_of_int r.accesses /. det_time r.vc_mrw_s r.nop_s

let ref_mrw_aps r = float_of_int r.accesses /. det_time r.ref_mrw_s r.nop_s

let mrw_speedup r = mrw_aps r /. ref_mrw_aps r

let vc_mrw_speedup r = vc_mrw_aps r /. ref_mrw_aps r

(* Both sides' detection time above the noise floor? *)
let row_measurable r =
  measurable r.mrw_s r.nop_s && measurable r.ref_mrw_s r.nop_s

let vc_row_measurable r =
  measurable r.vc_mrw_s r.nop_s && measurable r.ref_mrw_s r.nop_s

let identical name what a b =
  if a <> b then
    failwith
      (Fmt.str "detector bench: %s: %s race records differ (%d vs %d) — \
                detector bug"
         name what (List.length a) (List.length b))

let measure ~warmup ~repeat (b : Benchsuite.Bench.t) : row =
  let prog = Benchsuite.Bench.stripped_program b in
  (* The configurations are timed in interleaved rounds (every
     configuration once per round, minimum over rounds) rather than
     back-to-back: heap size and allocator state drift over a long bench
     process, and interleaving exposes every configuration to the same
     drift instead of letting it bias whichever ran last.  A full major
     collection before each run keeps one configuration's garbage off
     another's clock. *)
  let once f =
    Gc.full_major ();
    let r, s = Clock.time f in
    ignore (Sys.opaque_identity r);
    s
  in
  let pr = Static.Prune.make prog in
  let nop () = ignore (Rt.Interp.run prog) in
  let srw_f () = fst (Espbags.Detector.detect Espbags.Detector.Srw prog) in
  let mrw_f () = fst (Espbags.Detector.detect Espbags.Detector.Mrw prog) in
  let analysis () = ignore (Static.Prune.make prog) in
  let pruned_f () =
    fst
      (Espbags.Detector.detect
         ~keep:(Static.Prune.keep_fn pr)
         Espbags.Detector.Mrw prog)
  in
  let ref_srw_f () = fst (Espbags.Reference.detect Espbags.Detector.Srw prog) in
  let ref_mrw_f () = fst (Espbags.Reference.detect Espbags.Detector.Mrw prog) in
  let vc_srw_f () = fst (Vclock.Seq.detect Vclock.Seq.Srw prog) in
  let vc_mrw_f () = fst (Vclock.Seq.detect Vclock.Seq.Mrw prog) in
  let par_f () =
    fst
      (Vclock.Pardet.detect
         ~mode:(Par.Engine.Domains { n = par_domains (); seed = 1 })
         prog)
  in
  (* A 100%-inline fuzz schedule IS depth-first execution: same access
     set, same allocation order, even for benchmarks whose control flow
     reads racy data.  The sharded parallel detector is asserted against
     the sequential oracle on this schedule; the [Domains] row above is
     timing-only, since a racy program may genuinely execute a different
     access set under a different interleaving. *)
  let par_df_f () =
    fst
      (Vclock.Pardet.detect
         ~policy:{ Par.Engine.inline_pct = 100; yield_pct = 0 }
         ~mode:(Par.Engine.Fuzz { seed = 1 })
         prog)
  in
  for _ = 1 to warmup do
    nop ();
    ignore (srw_f ());
    ignore (mrw_f ());
    ignore (pruned_f ());
    ignore (ref_srw_f ());
    ignore (ref_mrw_f ());
    ignore (vc_srw_f ());
    ignore (vc_mrw_f ());
    ignore (par_f ())
  done;
  let nop_s = ref infinity
  and srw_s = ref infinity
  and mrw_s = ref infinity
  and analysis_s = ref infinity
  and mrw_pruned_s = ref infinity
  and ref_srw_s = ref infinity
  and ref_mrw_s = ref infinity
  and vc_srw_s = ref infinity
  and vc_mrw_s = ref infinity
  and par_mrw_s = ref infinity in
  let keep_min cell s = if s < !cell then cell := s in
  for _ = 1 to max 1 repeat do
    keep_min nop_s (once nop);
    keep_min srw_s (once (fun () -> ignore (srw_f ())));
    keep_min mrw_s (once (fun () -> ignore (mrw_f ())));
    keep_min analysis_s (once analysis);
    keep_min mrw_pruned_s (once (fun () -> ignore (pruned_f ())));
    keep_min ref_srw_s (once (fun () -> ignore (ref_srw_f ())));
    keep_min ref_mrw_s (once (fun () -> ignore (ref_mrw_f ())));
    keep_min vc_srw_s (once (fun () -> ignore (vc_srw_f ())));
    keep_min vc_mrw_s (once (fun () -> ignore (vc_mrw_f ())));
    keep_min par_mrw_s (once (fun () -> ignore (par_f ())))
  done;
  let nop_s = !nop_s
  and srw_s = !srw_s
  and mrw_s = !mrw_s
  and analysis_s = !analysis_s
  and mrw_pruned_s = !mrw_pruned_s
  and ref_srw_s = !ref_srw_s
  and ref_mrw_s = !ref_mrw_s
  and vc_srw_s = !vc_srw_s
  and vc_mrw_s = !vc_mrw_s
  and par_mrw_s = !par_mrw_s in
  let srw = srw_f ()
  and mrw = mrw_f ()
  and pruned = pruned_f ()
  and ref_srw = ref_srw_f ()
  and ref_mrw = ref_mrw_f ()
  and vc_srw = vc_srw_f ()
  and vc_mrw = vc_mrw_f ()
  and par_df = par_df_f () in
  identical b.name "ESP-bags SRW vs seed"
    (Espbags.Race.exact_sigs (Espbags.Detector.races srw))
    (Espbags.Race.exact_sigs (Espbags.Reference.races ref_srw));
  identical b.name "ESP-bags MRW vs seed"
    (Espbags.Race.exact_sigs (Espbags.Detector.races mrw))
    (Espbags.Race.exact_sigs (Espbags.Reference.races ref_mrw));
  identical b.name "vclock SRW vs seed"
    (Espbags.Race.exact_sigs (Vclock.Seq.races vc_srw))
    (Espbags.Race.exact_sigs (Espbags.Reference.races ref_srw));
  identical b.name "vclock MRW vs seed"
    (Espbags.Race.exact_sigs (Vclock.Seq.races vc_mrw))
    (Espbags.Race.exact_sigs (Espbags.Reference.races ref_mrw));
  identical b.name "MRW vs pruned MRW"
    (List.sort compare (Espbags.Race.exact_sigs (Espbags.Detector.races mrw)))
    (List.sort compare
       (Espbags.Race.exact_sigs (Espbags.Detector.races pruned)));
  (* The engine reorders and re-duplicates reports even on a
     deterministic schedule, so the parallel detector is held to static
     race-set equality (sorted distinct keys), not byte identity. *)
  identical b.name "parallel vclock static race set vs sequential MRW"
    (Vclock.Pardet.races par_df)
    (List.sort_uniq compare
       (List.map Espbags.Race.static_key_of_race (Espbags.Detector.races mrw)));
  {
    name = b.name;
    accesses = mrw.Espbags.Detector.n_accesses;
    races = Espbags.Detector.race_count mrw;
    nop_s;
    srw_s;
    mrw_s;
    analysis_s;
    mrw_pruned_s;
    skipped = pruned.Espbags.Detector.n_skipped;
    ref_srw_s;
    ref_mrw_s;
    vc_srw_s;
    vc_mrw_s;
    par_mrw_s;
  }

let json_of_rows ~repeat rows =
  let buf = Buffer.create 2048 in
  let row_json r =
    Fmt.str
      "    {\"name\": %S, \"accesses\": %d, \"races\": %d, \"nop_s\": %.6f, \
       \"srw_s\": %.6f, \"mrw_s\": %.6f, \"prune_analysis_s\": %.6f, \
       \"mrw_pruned_s\": %.6f, \"skipped_accesses\": %d, \"ref_srw_s\": \
       %.6f, \"ref_mrw_s\": %.6f, \"vc_srw_s\": %.6f, \"vc_mrw_s\": %.6f, \
       \"par_mrw_wall_s\": %.6f, \"mrw_det_accesses_per_s\": %.0f, \
       \"vc_mrw_det_accesses_per_s\": %.0f, \
       \"ref_mrw_det_accesses_per_s\": %.0f, \"mrw_speedup_vs_seed\": %.3f, \
       \"vc_mrw_speedup_vs_seed\": %.3f, \"mrw_overhead\": %.3f, \
       \"ref_mrw_overhead\": %.3f, \"measurable\": %b, \"vc_measurable\": \
       %b}"
      r.name r.accesses r.races r.nop_s r.srw_s r.mrw_s r.analysis_s
      r.mrw_pruned_s r.skipped r.ref_srw_s r.ref_mrw_s r.vc_srw_s r.vc_mrw_s
      r.par_mrw_s (mrw_aps r) (vc_mrw_aps r) (ref_mrw_aps r) (mrw_speedup r)
      (vc_mrw_speedup r) (r.mrw_s /. r.nop_s) (r.ref_mrw_s /. r.nop_s)
      (row_measurable r) (vc_row_measurable r)
  in
  (* summary statistics cover only rows whose detection time is above the
     noise floor on both sides *)
  let mrows = List.filter row_measurable rows in
  let vrows = List.filter vc_row_measurable rows in
  let geomean_over rs f =
    exp
      (List.fold_left (fun acc r -> acc +. log (f r)) 0. rs
      /. float_of_int (max 1 (List.length rs)))
  in
  let total_over rs f = List.fold_left (fun acc r -> acc +. f r) 0. rs in
  let total = total_over mrows in
  (* No measurable row leaves a 0/0 aggregate; JSON has no NaN, so such
     summaries are written as 0. *)
  let safe f = if Float.is_finite f then f else 0. in
  let agg_speedup =
    safe
      (total (fun r -> det_time r.ref_mrw_s r.nop_s)
      /. total (fun r -> det_time r.mrw_s r.nop_s))
  in
  let vc_agg_speedup =
    safe
      (total_over vrows (fun r -> det_time r.ref_mrw_s r.nop_s)
      /. total_over vrows (fun r -> det_time r.vc_mrw_s r.nop_s))
  in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Fmt.str "  \"repeat\": %d,\n" repeat);
  Buffer.add_string buf
    (Fmt.str "  \"par_domains\": %d,\n" (par_domains ()));
  Buffer.add_string buf
    (Fmt.str "  \"measured_rows\": %d,\n" (List.length mrows));
  Buffer.add_string buf
    (Fmt.str "  \"vc_measured_rows\": %d,\n" (List.length vrows));
  Buffer.add_string buf
    (Fmt.str "  \"aggregate_mrw_speedup_vs_seed\": %.3f,\n" agg_speedup);
  Buffer.add_string buf
    (Fmt.str "  \"aggregate_vc_mrw_speedup_vs_seed\": %.3f,\n" vc_agg_speedup);
  Buffer.add_string buf
    (Fmt.str "  \"total_accesses\": %.0f,\n"
       (total (fun r -> float_of_int r.accesses)));
  Buffer.add_string buf
    (Fmt.str "  \"aggregate_mrw_det_accesses_per_s\": %.0f,\n"
       (safe
          (total (fun r -> float_of_int r.accesses)
          /. total (fun r -> det_time r.mrw_s r.nop_s))));
  Buffer.add_string buf
    (Fmt.str "  \"aggregate_vc_mrw_det_accesses_per_s\": %.0f,\n"
       (safe
          (total_over vrows (fun r -> float_of_int r.accesses)
          /. total_over vrows (fun r -> det_time r.vc_mrw_s r.nop_s))));
  Buffer.add_string buf
    (Fmt.str "  \"aggregate_ref_mrw_det_accesses_per_s\": %.0f,\n"
       (safe
          (total (fun r -> float_of_int r.accesses)
          /. total (fun r -> det_time r.ref_mrw_s r.nop_s))));
  Buffer.add_string buf
    (Fmt.str "  \"geomean_mrw_speedup_vs_seed\": %.3f,\n"
       (geomean_over mrows mrw_speedup));
  Buffer.add_string buf
    (Fmt.str "  \"geomean_vc_mrw_speedup_vs_seed\": %.3f,\n"
       (geomean_over vrows vc_mrw_speedup));
  Buffer.add_string buf
    (Fmt.str "  \"geomean_srw_speedup_vs_seed\": %.3f,\n"
       (geomean_over mrows (fun r ->
            det_time r.ref_srw_s r.nop_s /. det_time r.srw_s r.nop_s)));
  Buffer.add_string buf "  \"rows\": [\n";
  Buffer.add_string buf (String.concat ",\n" (List.map row_json rows));
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let sweep ~quick () =
  let repeat = if quick then 1 else env_int "TDR_BENCH_REPEAT" 5 in
  let warmup = if quick then 0 else 1 in
  Fmt.pr
    "== detector shootout: seed / ESP-bags / vector clocks (%d-domain \
     parallel row) ==@."
    (par_domains ());
  Fmt.pr
    "(speedups in accesses/sec of detection time = run minus \
     uninstrumented baseline; par(ms) is wall-clock of detection \
     overlapped with parallel execution)@.";
  Fmt.pr "%-14s %10s %6s %9s %9s %9s %9s %9s %8s %8s@." "benchmark"
    "accesses" "races" "nop(ms)" "seed(ms)" "mrw(ms)" "vc(ms)" "par(ms)"
    "mrw-spd" "vc-spd";
  let rows =
    List.map
      (fun b ->
        let r = measure ~warmup ~repeat b in
        let spd ok v = if ok then Fmt.str "%7.2fx" v else "    n/a" in
        Fmt.pr "%-14s %10d %6d %9.2f %9.2f %9.2f %9.2f %9.2f %s %s@." r.name
          r.accesses r.races (1e3 *. r.nop_s) (1e3 *. r.ref_mrw_s)
          (1e3 *. r.mrw_s) (1e3 *. r.vc_mrw_s) (1e3 *. r.par_mrw_s)
          (spd (row_measurable r) (mrw_speedup r))
          (spd (vc_row_measurable r) (vc_mrw_speedup r));
        r)
      (suite ())
  in
  let mrows = List.filter row_measurable rows in
  let vrows = List.filter vc_row_measurable rows in
  let geomean_over rs f =
    exp
      (List.fold_left (fun acc r -> acc +. log (f r)) 0. rs
      /. float_of_int (max 1 (List.length rs)))
  in
  let total_over rs f = List.fold_left (fun acc r -> acc +. f r) 0. rs in
  let agg =
    total_over mrows (fun r -> det_time r.ref_mrw_s r.nop_s)
    /. total_over mrows (fun r -> det_time r.mrw_s r.nop_s)
  in
  let vc_agg =
    total_over vrows (fun r -> det_time r.ref_mrw_s r.nop_s)
    /. total_over vrows (fun r -> det_time r.vc_mrw_s r.nop_s)
  in
  Fmt.pr
    "race sets byte-identical to the seed on all %d benchmark(s), \
     parallel static race sets equal to the sequential MRW oracle; MRW \
     speedup vs seed over the %d with measurable detection time: %.2fx \
     aggregate, %.2fx geomean; vclock MRW over %d: %.2fx aggregate, \
     %.2fx geomean@."
    (List.length rows) (List.length mrows) agg
    (geomean_over mrows mrw_speedup)
    (List.length vrows) vc_agg
    (geomean_over vrows vc_mrw_speedup);
  (* Guard against the observability hooks (PR 5) creeping into the MRW
     hot loop: with tracing disabled the instrumented detector must stay
     faster than the seed implementation.  The floor is deliberately loose
     (1.0x by default, i.e. "at least as fast as the seed", far below the
     steady-state speedup) because CI machines are noisy and quick mode
     times a single run; TDR_BENCH_MIN_SPEEDUP overrides it.  Skipped
     entirely when no row's detection time is above the noise floor.  The
     parallel row never participates: its clock is wall time of a
     nondeterministic schedule. *)
  (if mrows <> [] then
     let floor = env_float "TDR_BENCH_MIN_SPEEDUP" 1.0 in
     if agg < floor then
       failwith
         (Fmt.str
            "detector bench: aggregate MRW speedup vs seed %.2fx is below \
             the %.2fx floor (TDR_BENCH_MIN_SPEEDUP) — instrumentation \
             overhead regression?"
            agg floor));
  (* Quick mode writes the JSON only on explicit request (the @ci alias
     must not litter the build dir), full mode by default. *)
  let json_dest =
    match Sys.getenv_opt "TDR_BENCH_DETECTOR_JSON" with
    | Some "-" -> None
    | Some path -> Some path
    | None -> if quick then None else Some "BENCH_detector.json"
  in
  match json_dest with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (json_of_rows ~repeat rows);
      close_out oc;
      Fmt.pr "[detector data written to %s]@." path

let run () = sweep ~quick:false ()

(* CI variant: single timed run per configuration, JSON only when
   TDR_BENCH_DETECTOR_JSON is set; the race-set identity assertions
   (ESP-bags and vclock vs seed, pruned vs unpruned, parallel static set
   vs sequential oracle) still run on the whole suite. *)
let run_quick () = sweep ~quick:true ()
