(* `bench detector`: per-access overhead of the race detectors on the
   Table 1 suite (finish-stripped, repair input sizes).

   For each benchmark the sweep times five configurations of the same
   deterministic execution: uninstrumented (nop), SRW, MRW, MRW with the
   static prune pre-pass (`--static-prune`, Static.Prune.keep_fn), and
   the seed MRW implementation kept in Espbags.Reference — hashtable
   bags, boxed-address shadow, per-access allocation — as the "before"
   side.

   The headline metric is detection throughput: monitored accesses per
   second of detector work, where detector work is the run's time minus
   the uninstrumented (nop) run of the same program — i.e. the per-access
   cost the detector itself adds, the quantity this PR's dense-shadow hot
   path optimizes.  (Total-run times are also recorded; on
   interpreter-bound programs they dilute any detector change with
   constant interpretation cost.)  The speedup column is the ratio of new
   to seed detection throughput.

   The interpreter is deterministic, so S-DPST node ids are stable across
   runs; the sweep asserts the new detectors' race reports byte-identical
   (same order, same (src, sink, addr, kind) records) to the seed's for
   both SRW and MRW, and the pruned run's race multiset identical to the
   unpruned one.  Any mismatch aborts rather than print a corrupt table.

   Timing discipline: minimum of TDR_BENCH_REPEAT timed runs (default 5,
   plus a warmup), with a [Gc.full_major] before every configuration so
   one configuration's garbage is not collected on another's clock.

   Environment knobs: TDR_BENCH_REPEAT, TDR_BENCH_DETECTOR_JSON (default
   BENCH_detector.json; "-" disables).  The quick variant (`bench
   detector-quick`, @ci) does a single run per configuration and skips
   the JSON, keeping the race-set identity assertions. *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> default)
  | None -> default

let env_float name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match float_of_string_opt s with Some f -> f | None -> default)
  | None -> default

type row = {
  name : string;
  accesses : int;
  races : int;
  nop_s : float;
  srw_s : float;
  mrw_s : float;
  analysis_s : float;  (** Static.Prune.make, paid once per program *)
  mrw_pruned_s : float;
  skipped : int;
  ref_srw_s : float;
  ref_mrw_s : float;
}

(* Detection time: run minus uninstrumented baseline, floored at 1us so
   clock jitter on a near-free configuration cannot yield a zero or
   negative denominator. *)
let det_time run nop = Float.max (run -. nop) 1e-6

(* A detection time below this floor (both absolute and relative to the
   interpreter baseline) is clock noise, not measurement: on
   interpreter-bound programs the run-to-run variance of the baseline
   itself exceeds the detector's contribution.  Such rows are printed and
   recorded but excluded from the summary speedups. *)
let measurable run nop = run -. nop >= Float.max 3e-4 (0.05 *. nop)

let mrw_aps r = float_of_int r.accesses /. det_time r.mrw_s r.nop_s

let ref_mrw_aps r = float_of_int r.accesses /. det_time r.ref_mrw_s r.nop_s

let mrw_speedup r = mrw_aps r /. ref_mrw_aps r

(* Both sides' detection time above the noise floor? *)
let row_measurable r =
  measurable r.mrw_s r.nop_s && measurable r.ref_mrw_s r.nop_s

(* Node ids are deterministic, so this is a byte-level record identity:
   two runs report the same races in the same order iff these lists are
   equal. *)
let exact_sigs races =
  List.map
    (fun (r : Espbags.Race.t) ->
      ( r.src.Sdpst.Node.id,
        r.sink.Sdpst.Node.id,
        Fmt.str "%a" Rt.Addr.pp r.addr,
        Fmt.str "%a" Espbags.Race.pp_kind r.kind ))
    races

let identical name what a b =
  if a <> b then
    failwith
      (Fmt.str "detector bench: %s: %s race records differ (%d vs %d) — \
                detector bug"
         name what (List.length a) (List.length b))

let measure ~warmup ~repeat (b : Benchsuite.Bench.t) : row =
  let prog = Benchsuite.Bench.stripped_program b in
  (* The configurations are timed in interleaved rounds (every
     configuration once per round, minimum over rounds) rather than
     back-to-back: heap size and allocator state drift over a long bench
     process, and interleaving exposes every configuration to the same
     drift instead of letting it bias whichever ran last.  A full major
     collection before each run keeps one configuration's garbage off
     another's clock. *)
  let once f =
    Gc.full_major ();
    let r, s = Clock.time f in
    ignore (Sys.opaque_identity r);
    s
  in
  let pr = Static.Prune.make prog in
  let nop () = ignore (Rt.Interp.run prog) in
  let srw_f () = fst (Espbags.Detector.detect Espbags.Detector.Srw prog) in
  let mrw_f () = fst (Espbags.Detector.detect Espbags.Detector.Mrw prog) in
  let analysis () = ignore (Static.Prune.make prog) in
  let pruned_f () =
    fst
      (Espbags.Detector.detect
         ~keep:(Static.Prune.keep_fn pr)
         Espbags.Detector.Mrw prog)
  in
  let ref_srw_f () = fst (Espbags.Reference.detect Espbags.Detector.Srw prog) in
  let ref_mrw_f () = fst (Espbags.Reference.detect Espbags.Detector.Mrw prog) in
  for _ = 1 to warmup do
    nop ();
    ignore (srw_f ());
    ignore (mrw_f ());
    ignore (pruned_f ());
    ignore (ref_srw_f ());
    ignore (ref_mrw_f ())
  done;
  let nop_s = ref infinity
  and srw_s = ref infinity
  and mrw_s = ref infinity
  and analysis_s = ref infinity
  and mrw_pruned_s = ref infinity
  and ref_srw_s = ref infinity
  and ref_mrw_s = ref infinity in
  let keep_min cell s = if s < !cell then cell := s in
  for _ = 1 to max 1 repeat do
    keep_min nop_s (once nop);
    keep_min srw_s (once (fun () -> ignore (srw_f ())));
    keep_min mrw_s (once (fun () -> ignore (mrw_f ())));
    keep_min analysis_s (once analysis);
    keep_min mrw_pruned_s (once (fun () -> ignore (pruned_f ())));
    keep_min ref_srw_s (once (fun () -> ignore (ref_srw_f ())));
    keep_min ref_mrw_s (once (fun () -> ignore (ref_mrw_f ())))
  done;
  let nop_s = !nop_s
  and srw_s = !srw_s
  and mrw_s = !mrw_s
  and analysis_s = !analysis_s
  and mrw_pruned_s = !mrw_pruned_s
  and ref_srw_s = !ref_srw_s
  and ref_mrw_s = !ref_mrw_s in
  let srw = srw_f ()
  and mrw = mrw_f ()
  and pruned = pruned_f ()
  and ref_srw = ref_srw_f ()
  and ref_mrw = ref_mrw_f () in
  identical b.name "SRW vs seed"
    (exact_sigs (Espbags.Detector.races srw))
    (exact_sigs (Espbags.Reference.races ref_srw));
  identical b.name "MRW vs seed"
    (exact_sigs (Espbags.Detector.races mrw))
    (exact_sigs (Espbags.Reference.races ref_mrw));
  identical b.name "MRW vs pruned MRW"
    (List.sort compare (exact_sigs (Espbags.Detector.races mrw)))
    (List.sort compare (exact_sigs (Espbags.Detector.races pruned)));
  {
    name = b.name;
    accesses = mrw.Espbags.Detector.n_accesses;
    races = Espbags.Detector.race_count mrw;
    nop_s;
    srw_s;
    mrw_s;
    analysis_s;
    mrw_pruned_s;
    skipped = pruned.Espbags.Detector.n_skipped;
    ref_srw_s;
    ref_mrw_s;
  }

let json_of_rows ~repeat rows =
  let buf = Buffer.create 2048 in
  let row_json r =
    Fmt.str
      "    {\"name\": %S, \"accesses\": %d, \"races\": %d, \"nop_s\": %.6f, \
       \"srw_s\": %.6f, \"mrw_s\": %.6f, \"prune_analysis_s\": %.6f, \
       \"mrw_pruned_s\": %.6f, \"skipped_accesses\": %d, \"ref_srw_s\": \
       %.6f, \"ref_mrw_s\": %.6f, \"mrw_det_accesses_per_s\": %.0f, \
       \"ref_mrw_det_accesses_per_s\": %.0f, \"mrw_speedup_vs_seed\": %.3f, \
       \"mrw_overhead\": %.3f, \"ref_mrw_overhead\": %.3f, \"measurable\": \
       %b}"
      r.name r.accesses r.races r.nop_s r.srw_s r.mrw_s r.analysis_s
      r.mrw_pruned_s r.skipped r.ref_srw_s r.ref_mrw_s (mrw_aps r)
      (ref_mrw_aps r) (mrw_speedup r) (r.mrw_s /. r.nop_s)
      (r.ref_mrw_s /. r.nop_s) (row_measurable r)
  in
  (* summary statistics cover only rows whose detection time is above the
     noise floor on both sides *)
  let mrows = List.filter row_measurable rows in
  let geomean f =
    exp
      (List.fold_left (fun acc r -> acc +. log (f r)) 0. mrows
      /. float_of_int (max 1 (List.length mrows)))
  in
  let total f = List.fold_left (fun acc r -> acc +. f r) 0. mrows in
  let agg_speedup =
    total (fun r -> det_time r.ref_mrw_s r.nop_s)
    /. total (fun r -> det_time r.mrw_s r.nop_s)
  in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Fmt.str "  \"repeat\": %d,\n" repeat);
  Buffer.add_string buf
    (Fmt.str "  \"measured_rows\": %d,\n" (List.length mrows));
  Buffer.add_string buf
    (Fmt.str "  \"aggregate_mrw_speedup_vs_seed\": %.3f,\n" agg_speedup);
  Buffer.add_string buf
    (Fmt.str "  \"total_accesses\": %.0f,\n"
       (total (fun r -> float_of_int r.accesses)));
  Buffer.add_string buf
    (Fmt.str "  \"aggregate_mrw_det_accesses_per_s\": %.0f,\n"
       (total (fun r -> float_of_int r.accesses)
       /. total (fun r -> det_time r.mrw_s r.nop_s)));
  Buffer.add_string buf
    (Fmt.str "  \"aggregate_ref_mrw_det_accesses_per_s\": %.0f,\n"
       (total (fun r -> float_of_int r.accesses)
       /. total (fun r -> det_time r.ref_mrw_s r.nop_s)));
  Buffer.add_string buf
    (Fmt.str "  \"geomean_mrw_speedup_vs_seed\": %.3f,\n" (geomean mrw_speedup));
  Buffer.add_string buf
    (Fmt.str "  \"geomean_srw_speedup_vs_seed\": %.3f,\n"
       (geomean (fun r ->
            det_time r.ref_srw_s r.nop_s /. det_time r.srw_s r.nop_s)));
  Buffer.add_string buf "  \"rows\": [\n";
  Buffer.add_string buf (String.concat ",\n" (List.map row_json rows));
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let sweep ~quick () =
  let repeat = if quick then 1 else env_int "TDR_BENCH_REPEAT" 5 in
  let warmup = if quick then 0 else 1 in
  Fmt.pr "== detector overhead: MRW hot path vs seed implementation ==@.";
  Fmt.pr
    "(accesses/sec of detection time = run minus uninstrumented baseline)@.";
  Fmt.pr "%-14s %10s %6s %9s %9s %9s %11s %11s %8s@." "benchmark" "accesses"
    "races" "nop(ms)" "mrw(ms)" "seed(ms)" "mrw(a/s)" "seed(a/s)" "speedup";
  let rows =
    List.map
      (fun b ->
        let r = measure ~warmup ~repeat b in
        let speedup =
          if row_measurable r then Fmt.str "%7.2fx" (mrw_speedup r)
          else "    n/a"
        in
        Fmt.pr "%-14s %10d %6d %9.2f %9.2f %9.2f %11.0f %11.0f %s@." r.name
          r.accesses r.races (1e3 *. r.nop_s) (1e3 *. r.mrw_s)
          (1e3 *. r.ref_mrw_s) (mrw_aps r) (ref_mrw_aps r) speedup;
        r)
      Benchsuite.Suite.all
  in
  let mrows = List.filter row_measurable rows in
  let geomean =
    exp
      (List.fold_left (fun acc r -> acc +. log (mrw_speedup r)) 0. mrows
      /. float_of_int (max 1 (List.length mrows)))
  in
  let total f = List.fold_left (fun acc r -> acc +. f r) 0. mrows in
  let agg =
    total (fun r -> det_time r.ref_mrw_s r.nop_s)
    /. total (fun r -> det_time r.mrw_s r.nop_s)
  in
  Fmt.pr
    "race sets byte-identical to the seed on all %d benchmark(s); MRW \
     speedup vs seed over the %d with measurable detection time: %.2fx \
     aggregate (suite accesses per detection second), %.2fx geomean@."
    (List.length rows) (List.length mrows) agg geomean;
  (* Guard against the observability hooks (PR 5) creeping into the MRW
     hot loop: with tracing disabled the instrumented detector must stay
     faster than the seed implementation.  The floor is deliberately loose
     (1.0x by default, i.e. "at least as fast as the seed", far below the
     steady-state speedup) because CI machines are noisy and quick mode
     times a single run; TDR_BENCH_MIN_SPEEDUP overrides it.  Skipped
     entirely when no row's detection time is above the noise floor. *)
  (if mrows <> [] then
     let floor = env_float "TDR_BENCH_MIN_SPEEDUP" 1.0 in
     if agg < floor then
       failwith
         (Fmt.str
            "detector bench: aggregate MRW speedup vs seed %.2fx is below \
             the %.2fx floor (TDR_BENCH_MIN_SPEEDUP) — instrumentation \
             overhead regression?"
            agg floor));
  if quick then ()
  else
    match Sys.getenv_opt "TDR_BENCH_DETECTOR_JSON" with
    | Some "-" -> ()
    | path_opt ->
        let path = Option.value ~default:"BENCH_detector.json" path_opt in
        let oc = open_out path in
        output_string oc (json_of_rows ~repeat rows);
        close_out oc;
        Fmt.pr "[detector data written to %s]@." path

let run () = sweep ~quick:false ()

(* CI variant: single timed run per configuration, no JSON; the race-set
   identity assertions (new vs seed, pruned vs unpruned) still run on the
   whole suite. *)
let run_quick () = sweep ~quick:true ()
